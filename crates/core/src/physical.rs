//! Physical optimization: shipping and local strategies.
//!
//! For one logical operator order, this module plays the role of the
//! "existing cost-based optimizer" of Section 7.1: it "selects data
//! shipping and execution strategies such as broadcasting and hybrid-hash
//! joins", reusing **interesting properties** (partitionings) during the
//! recursive descent — e.g. the Q15 discussion in Section 7.3 where
//! "since Match operates on the same key as Reduce, the partitioning
//! property remains and can be reused".
//!
//! Strategies:
//!
//! * shipping: [`Ship::Forward`] (stay local), [`Ship::Partition`] (hash
//!   repartition by key), [`Ship::Broadcast`] (replicate to all workers);
//! * local: pipelined Map, hash or sort grouping, hash join with explicit
//!   build side, sort-merge join, block-nested-loop cross, sort-merge
//!   co-group.
//!
//! Selection keeps, per subtree, the cheapest candidate for every distinct
//! output partitioning (a miniature Volcano with interesting properties),
//! so a more expensive child plan that delivers a reusable partitioning can
//! win globally.

use crate::cost::{estimate, CostWeights, Est};
use crate::props::PropTable;
use std::sync::Arc;
use strato_dataflow::{NodeKind, Pact, Plan, PlanNode};
use strato_record::AttrId;

/// A shipping strategy for one operator input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ship {
    /// Keep records on their current worker.
    Forward,
    /// Hash-repartition by the given global attributes.
    Partition(Vec<AttrId>),
    /// Replicate every record to every worker.
    Broadcast,
}

/// A local execution strategy for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalStrategy {
    /// Pipelined record-at-a-time execution (Map).
    Pipe,
    /// Build an in-memory hash table of groups.
    HashGroup,
    /// Sort by key, then group.
    SortGroup,
    /// Streaming hash pre-aggregation: fold one partial record per key as
    /// batches arrive, then invoke the UDF once per partial. Legal only
    /// for *combinable* reduces (see `Plan::combinable_reduce`); holds one
    /// record per distinct key instead of buffering the whole input.
    StreamAgg,
    /// Hash join building on the left input.
    HashJoinBuildLeft,
    /// Hash join building on the right input.
    HashJoinBuildRight,
    /// Sort both inputs and merge.
    SortMergeJoin,
    /// Block-nested-loop Cartesian product.
    BlockNestedLoop,
    /// Sort-merge co-grouping.
    CoGroupSortMerge,
}

impl LocalStrategy {
    /// The algorithm a PACT runs when no physical optimization chose one —
    /// the lowering hook the execution runtime's compile step uses for
    /// logical (oracle) plans.
    pub fn default_for(pact: &Pact) -> LocalStrategy {
        match pact {
            Pact::Map => LocalStrategy::Pipe,
            Pact::Reduce { .. } => LocalStrategy::HashGroup,
            Pact::Match { .. } => LocalStrategy::HashJoinBuildLeft,
            Pact::Cross => LocalStrategy::BlockNestedLoop,
            Pact::CoGroup { .. } => LocalStrategy::CoGroupSortMerge,
        }
    }
}

/// A physical plan node.
#[derive(Debug, Clone)]
pub struct PhysNode {
    /// The logical node this realizes.
    pub logical: Arc<PlanNode>,
    /// Ship strategy per input (empty for sources).
    pub ships: Vec<Ship>,
    /// Local strategy.
    pub local: LocalStrategy,
    /// Insert a pre-ship combiner stage ahead of input 0: partial
    /// aggregation on the producing partitions before the Partition ship.
    /// Only ever set on combinable Partition-shipped Reduces.
    pub combine: bool,
    /// Children.
    pub children: Vec<PhysNode>,
    /// Output estimate.
    pub est: Est,
    /// Cumulative cost of this subtree.
    pub cost: f64,
}

impl PhysNode {
    /// Renders the physical plan as an indented tree.
    pub fn render(&self, plan: &Plan, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self.logical.kind {
            NodeKind::Source(s) => {
                out.push_str(&format!("scan {}\n", plan.ctx.sources[s].name));
            }
            NodeKind::Op(o) => {
                let op = &plan.ctx.ops[o];
                let ships: Vec<String> = self
                    .ships
                    .iter()
                    .map(|s| match s {
                        Ship::Forward => "fwd".to_string(),
                        Ship::Partition(k) => format!("part({})", k.len()),
                        Ship::Broadcast => "bcast".to_string(),
                    })
                    .collect();
                out.push_str(&format!(
                    "{} [{} | {:?}{} | ships {}] rows≈{:.0}\n",
                    op.name,
                    op.pact.kind_name(),
                    self.local,
                    if self.combine { " +combine" } else { "" },
                    ships.join(","),
                    self.est.rows
                ));
            }
        }
        for c in &self.children {
            c.render(plan, depth + 1, out);
        }
    }
}

/// A fully costed physical plan for one logical order.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// Root of the physical tree.
    pub root: PhysNode,
    /// Total estimated cost.
    pub total_cost: f64,
}

impl PhysPlan {
    /// Renders the plan.
    pub fn render(&self, plan: &Plan) -> String {
        let mut s = String::new();
        self.root.render(plan, 0, &mut s);
        s
    }
}

/// One candidate during selection: a physical subtree plus the partitioning
/// property its output satisfies.
#[derive(Debug, Clone)]
struct Candidate {
    phys: PhysNode,
    partitioning: Option<Vec<AttrId>>,
}

/// Chooses the cheapest physical realization of a logical plan.
pub fn best_physical(
    plan: &Plan,
    props: &PropTable,
    weights: &CostWeights,
    dop: usize,
) -> PhysPlan {
    let cands = candidates(plan, props, weights, dop, &plan.root);
    let best = cands
        .into_iter()
        .min_by(|a, b| a.phys.cost.total_cmp(&b.phys.cost))
        .expect("at least one candidate");
    PhysPlan {
        total_cost: best.phys.cost,
        root: best.phys,
    }
}

/// Spill charge: bytes beyond the memory budget cost disk IO (write+read).
fn spill(bytes: f64, w: &CostWeights) -> f64 {
    if bytes > w.mem_budget {
        2.0 * (bytes - w.mem_budget) * w.disk
    } else {
        0.0
    }
}

fn sort_cost(e: &Est, w: &CostWeights) -> f64 {
    let n = e.rows.max(2.0);
    0.3 * n * n.log2() * w.cpu + spill(e.bytes(), w)
}

fn hash_build_cost(e: &Est, w: &CostWeights) -> f64 {
    1.2 * e.rows * w.cpu + spill(e.bytes(), w)
}

/// Streaming pre-aggregation: one hash probe + fold per record, no
/// buffering or re-grouping pass, and the memory (hence spill) footprint
/// is one partial per distinct key rather than the whole input.
fn stream_agg_cost(e: &Est, groups: f64, w: &CostWeights) -> f64 {
    e.rows * w.cpu + spill(groups * e.bytes_per_row, w)
}

fn ship_cost(ship: &Ship, e: &Est, w: &CostWeights, dop: usize) -> f64 {
    match ship {
        Ship::Forward => 0.0,
        // (dop-1)/dop of the data crosses the wire; approximate with 1.
        Ship::Partition(_) => e.bytes() * w.net,
        Ship::Broadcast => e.bytes() * w.net * dop as f64,
    }
}

/// Keeps only the cheapest candidate per distinct partitioning plus the
/// globally cheapest.
fn prune(mut cands: Vec<Candidate>) -> Vec<Candidate> {
    cands.sort_by(|a, b| a.phys.cost.total_cmp(&b.phys.cost));
    let mut seen: Vec<Option<Vec<AttrId>>> = Vec::new();
    let mut out = Vec::new();
    for c in cands {
        if !seen.contains(&c.partitioning) {
            seen.push(c.partitioning.clone());
            out.push(c);
        }
    }
    out
}

/// Does the child partitioning satisfy a required key (non-empty subset)?
fn satisfies(part: &Option<Vec<AttrId>>, key: &[AttrId]) -> bool {
    match part {
        Some(p) => !p.is_empty() && p.iter().all(|a| key.contains(a)),
        None => false,
    }
}

fn candidates(
    plan: &Plan,
    props: &PropTable,
    w: &CostWeights,
    dop: usize,
    node: &Arc<PlanNode>,
) -> Vec<Candidate> {
    match node.kind {
        NodeKind::Source(_) => {
            let est = estimate(plan, node);
            // Scan cost: every plan reads every source once (the paper notes
            // all plans do full scans), charged as disk IO.
            let cost = est.bytes() * w.disk;
            vec![Candidate {
                phys: PhysNode {
                    logical: node.clone(),
                    ships: vec![],
                    local: LocalStrategy::Pipe,
                    combine: false,
                    children: vec![],
                    est,
                    cost,
                },
                partitioning: None,
            }]
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let est = estimate(plan, node);
            let udf_cpu = est.calls * op.hints.cpu_per_call * w.cpu;
            let mut out: Vec<Candidate> = Vec::new();
            match &op.pact {
                Pact::Map => {
                    for c in candidates(plan, props, w, dop, &node.children[0]) {
                        // A Map that writes partition attributes destroys
                        // the property.
                        let part = match &c.partitioning {
                            Some(p) if p.iter().all(|a| !props.get(o).write.contains(*a)) => {
                                c.partitioning.clone()
                            }
                            _ => None,
                        };
                        let cost = c.phys.cost + udf_cpu;
                        out.push(Candidate {
                            phys: PhysNode {
                                logical: node.clone(),
                                ships: vec![Ship::Forward],
                                local: LocalStrategy::Pipe,
                                combine: false,
                                children: vec![c.phys],
                                est,
                                cost,
                            },
                            partitioning: part,
                        });
                    }
                }
                Pact::Reduce { .. } => {
                    let key = op.key_attrs[0].clone();
                    let combinable = plan.combinable_reduce(node);
                    for c in candidates(plan, props, w, dop, &node.children[0]) {
                        let reuse = satisfies(&c.partitioning, &key);
                        let ship = if reuse {
                            Ship::Forward
                        } else {
                            Ship::Partition(key.clone())
                        };
                        let in_est = c.phys.est;
                        let groups = crate::cost::reduce_groups(op, in_est.rows);
                        for combine in [false, true] {
                            // A pre-ship combiner only exists for
                            // combinable, Partition-shipped reduces.
                            if combine && !(combinable && matches!(ship, Ship::Partition(_))) {
                                continue;
                            }
                            // Combining caps the shipped volume at one
                            // partial per key per producing partition —
                            // the shipped-bytes reduction that lets plan
                            // enumeration prefer combined plans.
                            let shipped_est = if combine {
                                Est {
                                    rows: (groups * dop as f64).min(in_est.rows),
                                    ..in_est
                                }
                            } else {
                                in_est
                            };
                            // The combiner's own work: a hash probe and
                            // fold per input record on the producing side.
                            let combiner_cpu = if combine {
                                0.5 * in_est.rows * w.cpu
                            } else {
                                0.0
                            };
                            let base = c.phys.cost
                                + ship_cost(&ship, &shipped_est, w, dop)
                                + udf_cpu
                                + combiner_cpu;
                            let mut locals = vec![
                                (LocalStrategy::HashGroup, hash_build_cost(&shipped_est, w)),
                                (LocalStrategy::SortGroup, sort_cost(&shipped_est, w)),
                            ];
                            if combinable {
                                locals.push((
                                    LocalStrategy::StreamAgg,
                                    stream_agg_cost(&shipped_est, groups, w),
                                ));
                            }
                            for (local, lcost) in locals {
                                out.push(Candidate {
                                    phys: PhysNode {
                                        logical: node.clone(),
                                        ships: vec![ship.clone()],
                                        local,
                                        combine,
                                        children: vec![c.phys.clone()],
                                        est,
                                        cost: base + lcost,
                                    },
                                    partitioning: Some(key.clone()),
                                });
                            }
                        }
                    }
                }
                Pact::Match { .. } => {
                    let (kl, kr) = (op.key_attrs[0].clone(), op.key_attrs[1].clone());
                    let lcands = candidates(plan, props, w, dop, &node.children[0]);
                    let rcands = candidates(plan, props, w, dop, &node.children[1]);
                    for lc in &lcands {
                        for rc in &rcands {
                            let (le, re) = (lc.phys.est, rc.phys.est);
                            // (a) Repartition both (with reuse).
                            let ship_l = if satisfies(&lc.partitioning, &kl) {
                                Ship::Forward
                            } else {
                                Ship::Partition(kl.clone())
                            };
                            let ship_r = if satisfies(&rc.partitioning, &kr) {
                                Ship::Forward
                            } else {
                                Ship::Partition(kr.clone())
                            };
                            // Reuse is only sound if both sides end up
                            // co-partitioned; forwarding both requires that
                            // their partitionings correspond — we only reuse
                            // when the other side is repartitioned on the
                            // full key or both were partitioned identically
                            // by position. Conservative: if both would
                            // forward, repartition the bigger-keyed side.
                            let (ship_l, ship_r) = match (&ship_l, &ship_r) {
                                (Ship::Forward, Ship::Forward) => {
                                    // Require exact correspondence of the
                                    // partition keys to the join keys.
                                    let exact_l = lc.partitioning.as_deref() == Some(&kl[..]);
                                    let exact_r = rc.partitioning.as_deref() == Some(&kr[..]);
                                    if exact_l && exact_r {
                                        (Ship::Forward, Ship::Forward)
                                    } else if exact_l {
                                        (Ship::Forward, Ship::Partition(kr.clone()))
                                    } else {
                                        (Ship::Partition(kl.clone()), ship_r)
                                    }
                                }
                                _ => (ship_l, ship_r),
                            };
                            let ship_cost_ab =
                                ship_cost(&ship_l, &le, w, dop) + ship_cost(&ship_r, &re, w, dop);
                            let (build, bcost) = if le.bytes() <= re.bytes() {
                                (LocalStrategy::HashJoinBuildLeft, hash_build_cost(&le, w))
                            } else {
                                (LocalStrategy::HashJoinBuildRight, hash_build_cost(&re, w))
                            };
                            let smj = sort_cost(&le, w) + sort_cost(&re, w);
                            let base = lc.phys.cost + rc.phys.cost + udf_cpu;
                            for (local, lcost2) in
                                [(build, bcost), (LocalStrategy::SortMergeJoin, smj)]
                            {
                                for part_out in [Some(kl.clone()), Some(kr.clone())] {
                                    out.push(Candidate {
                                        phys: PhysNode {
                                            logical: node.clone(),
                                            ships: vec![ship_l.clone(), ship_r.clone()],
                                            local,
                                            combine: false,
                                            children: vec![lc.phys.clone(), rc.phys.clone()],
                                            est,
                                            cost: base + ship_cost_ab + lcost2,
                                        },
                                        partitioning: part_out,
                                    });
                                }
                            }
                            // (b) Broadcast the smaller side; the larger
                            // side's partitioning survives.
                            let (bc_side, fw_side, bc_est, fw_cand) = if le.bytes() <= re.bytes() {
                                (0usize, 1usize, le, rc)
                            } else {
                                (1, 0, re, lc)
                            };
                            let mut ships = vec![Ship::Forward, Ship::Forward];
                            ships[bc_side] = Ship::Broadcast;
                            let bcost2 = ship_cost(&Ship::Broadcast, &bc_est, w, dop)
                                + hash_build_cost(&bc_est, w) * dop as f64;
                            let local = if bc_side == 0 {
                                LocalStrategy::HashJoinBuildLeft
                            } else {
                                LocalStrategy::HashJoinBuildRight
                            };
                            let _ = fw_side;
                            out.push(Candidate {
                                phys: PhysNode {
                                    logical: node.clone(),
                                    ships,
                                    local,
                                    combine: false,
                                    children: vec![lc.phys.clone(), rc.phys.clone()],
                                    est,
                                    cost: lc.phys.cost + rc.phys.cost + udf_cpu + bcost2,
                                },
                                partitioning: fw_cand.partitioning.clone(),
                            });
                        }
                    }
                }
                Pact::Cross => {
                    let lcands = candidates(plan, props, w, dop, &node.children[0]);
                    let rcands = candidates(plan, props, w, dop, &node.children[1]);
                    for lc in &lcands {
                        for rc in &rcands {
                            let (le, re) = (lc.phys.est, rc.phys.est);
                            let (bc_side, bc_est, keep) = if le.bytes() <= re.bytes() {
                                (0usize, le, rc)
                            } else {
                                (1, re, lc)
                            };
                            let mut ships = vec![Ship::Forward, Ship::Forward];
                            ships[bc_side] = Ship::Broadcast;
                            let cost = lc.phys.cost
                                + rc.phys.cost
                                + udf_cpu
                                + ship_cost(&Ship::Broadcast, &bc_est, w, dop)
                                + est.calls * w.cpu * 0.1;
                            out.push(Candidate {
                                phys: PhysNode {
                                    logical: node.clone(),
                                    ships,
                                    local: LocalStrategy::BlockNestedLoop,
                                    combine: false,
                                    children: vec![lc.phys.clone(), rc.phys.clone()],
                                    est,
                                    cost,
                                },
                                partitioning: keep.partitioning.clone(),
                            });
                        }
                    }
                }
                Pact::CoGroup { .. } => {
                    let (kl, kr) = (op.key_attrs[0].clone(), op.key_attrs[1].clone());
                    let lcands = candidates(plan, props, w, dop, &node.children[0]);
                    let rcands = candidates(plan, props, w, dop, &node.children[1]);
                    for lc in &lcands {
                        for rc in &rcands {
                            let (le, re) = (lc.phys.est, rc.phys.est);
                            let ship_l = Ship::Partition(kl.clone());
                            let ship_r = Ship::Partition(kr.clone());
                            let cost = lc.phys.cost
                                + rc.phys.cost
                                + udf_cpu
                                + ship_cost(&ship_l, &le, w, dop)
                                + ship_cost(&ship_r, &re, w, dop)
                                + sort_cost(&le, w)
                                + sort_cost(&re, w);
                            out.push(Candidate {
                                phys: PhysNode {
                                    logical: node.clone(),
                                    ships: vec![ship_l, ship_r],
                                    local: LocalStrategy::CoGroupSortMerge,
                                    combine: false,
                                    children: vec![lc.phys.clone(), rc.phys.clone()],
                                    est,
                                    cost,
                                },
                                partitioning: Some(kl.clone()),
                            });
                        }
                    }
                }
            }
            prune(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::{FuncBuilder, Function, UdfKind};

    fn identity_map(w: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![w]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn group_first(w: usize) -> Function {
        let mut b = FuncBuilder::new("first", UdfKind::Group, vec![w]);
        let it = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it, nil);
        let or = b.copy(first);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn phys_of(plan: &Plan) -> PhysPlan {
        let props = PropTable::build(plan, PropertyMode::Sca);
        best_physical(plan, &props, &CostWeights::default(), 8)
    }

    #[test]
    fn broadcast_wins_for_tiny_build_side() {
        let mut p = ProgramBuilder::new();
        let big = p.source(SourceDef::new("big", &["k", "v"], 1_000_000).with_bytes_per_row(64));
        let tiny = p.source(SourceDef::new("tiny", &["k"], 10).with_bytes_per_row(8));
        let j = p.match_(
            "j",
            &[0],
            &[0],
            join_udf(2, 1),
            CostHints::default().with_distinct_keys(10),
            big,
            tiny,
        );
        let plan = p.finish(j).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert_eq!(phys.root.ships[1], Ship::Broadcast);
        assert_eq!(phys.root.ships[0], Ship::Forward);
        assert_eq!(phys.root.local, LocalStrategy::HashJoinBuildRight);
    }

    #[test]
    fn repartition_wins_for_balanced_sides() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 500_000).with_bytes_per_row(64));
        let r = p.source(SourceDef::new("r", &["k", "w"], 500_000).with_bytes_per_row(64));
        let j = p.match_(
            "j",
            &[0],
            &[0],
            join_udf(2, 2),
            CostHints::default().with_distinct_keys(100_000),
            l,
            r,
        );
        let plan = p.finish(j).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert!(matches!(phys.root.ships[0], Ship::Partition(_)));
        assert!(matches!(phys.root.ships[1], Ship::Partition(_)));
    }

    #[test]
    fn reduce_reuses_match_partitioning() {
        // Section 7.3 / Q15 flavour: Match on k, then Reduce on the same k:
        // the reduce's input must be Forward (partitioning reuse).
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 400_000).with_bytes_per_row(64));
        let r = p.source(SourceDef::new("r", &["k2"], 300_000).with_bytes_per_row(64));
        let j = p.match_(
            "j",
            &[0],
            &[0],
            join_udf(2, 1),
            CostHints::default().with_distinct_keys(50_000),
            l,
            r,
        );
        let g = p.reduce(
            "g",
            &[0],
            group_first(3),
            CostHints::default().with_distinct_keys(50_000),
            j,
        );
        let plan = p.finish(g).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert_eq!(
            phys.root.ships[0],
            Ship::Forward,
            "reduce must reuse the join's partitioning:\n{}",
            phys.render(&plan)
        );
    }

    #[test]
    fn map_is_pipelined_for_free() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a"], 100));
        let m = p.map("id", identity_map(1), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert_eq!(phys.root.ships[0], Ship::Forward);
        assert_eq!(phys.root.local, LocalStrategy::Pipe);
    }

    #[test]
    fn costs_are_positive_and_monotone_with_size() {
        let cost_for = |rows: u64| {
            let mut p = ProgramBuilder::new();
            let s = p.source(SourceDef::new("s", &["k"], rows).with_bytes_per_row(32));
            let g = p.reduce("g", &[0], group_first(1), CostHints::default(), s);
            let plan = p.finish(g).unwrap().bind().unwrap();
            phys_of(&plan).total_cost
        };
        let small = cost_for(1_000);
        let big = cost_for(1_000_000);
        assert!(small > 0.0);
        assert!(big > small);
    }

    /// In-place sum over `field` — combinable (decomposable) by SCA.
    fn sum_inplace(w: usize, field: usize) -> Function {
        use strato_ir::BinOp;
        let mut b = FuncBuilder::new("sum_ip", UdfKind::Group, vec![w]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, field, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn combinable_reduce_prefers_combiner_and_stream_agg() {
        // Duplicate-heavy grouped aggregate: shipping one partial per key
        // per partition beats shipping 200k raw rows, so the cost model
        // must pick the combined plan — and the streaming local strategy.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 200_000).with_bytes_per_row(40));
        let g = p.reduce(
            "agg",
            &[0],
            sum_inplace(2, 1),
            CostHints::default().with_distinct_keys(64),
            s,
        );
        let plan = p.finish(g).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert!(phys.root.combine, "{}", phys.render(&plan));
        assert_eq!(phys.root.local, LocalStrategy::StreamAgg);
        assert!(matches!(phys.root.ships[0], Ship::Partition(_)));
        assert!(phys.render(&plan).contains("+combine"));
    }

    #[test]
    fn combined_plan_is_strictly_cheaper_on_duplicate_heavy_input() {
        // Same shape, combinable vs not (append-style sum): the combinable
        // one must cost less because the ship volume collapses.
        let cost_with = |udf: Function| {
            let mut p = ProgramBuilder::new();
            let s = p.source(SourceDef::new("s", &["k", "v"], 200_000).with_bytes_per_row(40));
            let g = p.reduce(
                "agg",
                &[0],
                udf,
                CostHints::default().with_distinct_keys(64),
                s,
            );
            let plan = p.finish(g).unwrap().bind().unwrap();
            phys_of(&plan).total_cost
        };
        let combined = cost_with(sum_inplace(2, 1));
        let uncombined = cost_with(group_first(2));
        assert!(
            combined < uncombined,
            "combined {combined} vs uncombined {uncombined}"
        );
    }

    #[test]
    fn non_combinable_reduce_never_combines() {
        // group_first passes a non-key payload through: not decomposable.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 200_000).with_bytes_per_row(40));
        let g = p.reduce(
            "agg",
            &[0],
            group_first(2),
            CostHints::default().with_distinct_keys(64),
            s,
        );
        let plan = p.finish(g).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        assert!(!phys.root.combine);
        assert_ne!(phys.root.local, LocalStrategy::StreamAgg);
    }

    #[test]
    fn spill_charge_is_zero_within_budget_and_grows_beyond_it() {
        // Parity with the execution engine: the runtime spills exactly when
        // buffered state exceeds `mem_budget` (see `ExecOptions::mem_budget`,
        // whose default is the same `DEFAULT_MEM_BUDGET_BYTES` constant), so
        // the cost model must charge nothing at or below the budget and a
        // monotone write+read disk penalty above it.
        let w = CostWeights::default();
        assert_eq!(w.mem_budget, crate::cost::DEFAULT_MEM_BUDGET_BYTES as f64);
        assert_eq!(spill(0.0, &w), 0.0);
        assert_eq!(spill(w.mem_budget, &w), 0.0);
        let just_over = spill(w.mem_budget + 1024.0, &w);
        let far_over = spill(w.mem_budget * 3.0, &w);
        assert!(just_over > 0.0);
        assert!(far_over > just_over, "spill charge must be monotone");
        // Write + read: every byte beyond the budget is charged twice at the
        // disk rate.
        assert_eq!(just_over, 2.0 * 1024.0 * w.disk);
    }

    #[test]
    fn render_mentions_strategies() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k"], 1000));
        let g = p.reduce("g", &[0], group_first(1), CostHints::default(), s);
        let plan = p.finish(g).unwrap().bind().unwrap();
        let phys = phys_of(&plan);
        let txt = phys.render(&plan);
        assert!(txt.contains("g [Reduce"), "{txt}");
        assert!(txt.contains("scan s"), "{txt}");
    }
}
