//! Reordering conditions (Section 4 of the paper).
//!
//! Everything here is *attribute-set algebra over black-box properties*: no
//! rule ever inspects UDF semantics, only the conservative read/write/
//! control sets, emit bounds, key attributes and uniqueness constraints.
//!
//! | Rule | Paper source |
//! |---|---|
//! | [`roc`] | Definition 4 |
//! | [`kgp`] | Definition 5 |
//! | Map↔Map swap | Theorem 1 |
//! | Map↔Reduce swap | Theorem 2 |
//! | Reduce↔Reduce swap | Section 4.2.2 ("proof proceeds similarly"), implemented for equal keys |
//! | unary ↔ binary exchange | Theorem 3 + Lemma 1 (`Match ≡ Map∘Cross`); the `CoGroup ≡ Reduce∘∪T` variant is conservatively rejected (see `can_exchange_unary_binary`) |
//! | Reduce ↔ Match (invariant grouping) | Theorem 4 + Section 4.3.2, PK–FK gated |
//! | binary rotation (join re-association) | Lemma 1 generalized to trees |

use crate::constraints::subtree_unique_on;
use crate::props::{OpProps, PropTable};
use strato_dataflow::{Pact, Plan, PlanNode};
use strato_record::AttrSet;

/// The **read-only conflict** condition (Definition 4):
/// `R_f ∩ W_g = W_f ∩ R_g = W_f ∩ W_g = ∅`.
pub fn roc(f: &OpProps, g: &OpProps) -> bool {
    f.read.is_disjoint(&g.write) && f.write.is_disjoint(&g.read) && f.write.is_disjoint(&g.write)
}

/// The **key group preservation** condition (Definition 5) for a
/// record-at-a-time operator `f` against key set `K`:
///
/// 1. `∀r: |f(r)| = 1`, or
/// 2. `|f(r)| ≤ 1` and the emit decision depends only on attributes
///    `F ⊆ K` (approximated by the control-read set).
pub fn kgp(f: &OpProps, key: &AttrSet) -> bool {
    f.emits.exactly_one() || (f.emits.at_most_one() && f.control.is_subset(key))
}

/// Everything needed to evaluate a reordering at one tree junction.
pub struct CondCtx<'a> {
    /// The plan whose tree is being rearranged.
    pub plan: &'a Plan,
    /// Global properties of every operator.
    pub props: &'a PropTable,
}

impl<'a> CondCtx<'a> {
    /// Creates a context.
    pub fn new(plan: &'a Plan, props: &'a PropTable) -> Self {
        CondCtx { plan, props }
    }

    fn pact(&self, op: usize) -> &Pact {
        &self.plan.ctx.ops[op].pact
    }

    fn key_set(&self, op: usize, input: usize) -> AttrSet {
        self.plan.ctx.ops[op].key_set(input)
    }

    /// Can two adjacent **unary** operators swap? `upper` currently consumes
    /// `lower`'s output (or vice versa — the condition is symmetric).
    pub fn can_swap_unary_unary(&self, a: usize, b: usize) -> bool {
        let (pa, pb) = (self.props.get(a), self.props.get(b));
        if !roc(pa, pb) {
            return false;
        }
        match (self.pact(a), self.pact(b)) {
            // Theorem 1.
            (Pact::Map, Pact::Map) => true,
            // Theorem 2: the Map needs KGP w.r.t. the Reduce key.
            (Pact::Map, Pact::Reduce { .. }) => kgp(pa, &self.key_set(b, 0)),
            (Pact::Reduce { .. }, Pact::Map) => kgp(pb, &self.key_set(a, 0)),
            // Section 4.2.2 final remark, implemented conservatively for
            // *equal* keys: each key group is processed independently by
            // both sides, both are at-most-one-per-group with key-determined
            // decisions, and ROC makes the per-group applications commute.
            (Pact::Reduce { .. }, Pact::Reduce { .. }) => {
                let (ka, kb) = (self.key_set(a, 0), self.key_set(b, 0));
                ka == kb
                    && pa.emits.at_most_one()
                    && pb.emits.at_most_one()
                    && pa.control.is_subset(&ka)
                    && pb.control.is_subset(&kb)
            }
            _ => false,
        }
    }

    /// Can unary operator `u` sit **below** binary operator `b` on child
    /// side `side` (equivalently: can it be pulled above from there)? The
    /// equivalence is symmetric, so one predicate serves both directions.
    ///
    /// `subtrees` are `b`'s two input subtrees in the configuration where
    /// `u` is *not* between them (i.e. the operand subtrees seen by `b`
    /// excluding `u` itself).
    pub fn can_exchange_unary_binary(
        &self,
        u: usize,
        b: usize,
        side: usize,
        subtrees: [&PlanNode; 2],
    ) -> bool {
        let (pu, pb) = (self.props.get(u), self.props.get(b));
        if !roc(pu, pb) {
            return false;
        }
        // Theorem 3: the unary operator must not touch the other side.
        let other = self.plan.attrs_of(subtrees[1 - side]);
        if !pu.accessed().is_disjoint(&other) {
            return false;
        }
        match (self.pact(u), self.pact(b)) {
            (Pact::Map, Pact::Cross | Pact::Match { .. }) => true,
            // CoGroup ≡ Reduce over the tagged union (Section 4.3.2): the
            // push-down additionally requires the Map, rewritten as f_R, to
            // act as the identity on the other input's records. A CoGroup
            // group may be *one-sided*; above the CoGroup the Map processes
            // that group's output (other-side attributes all null), below it
            // never runs on it. Equivalence therefore needs the UDF's
            // writes to be null-strict in its own side's attributes — a
            // semantic property our conservative attribute sets cannot
            // certify, so the exchange is rejected outright.
            (Pact::Map, Pact::CoGroup { .. }) => false,
            // Invariant grouping (Theorem 4 + §4.3.2): Reduce through Match.
            (Pact::Reduce { .. }, Pact::Match { .. }) => {
                let reduce_key = self.key_set(u, 0);
                // F (the Match key on the Reduce's side) must be covered by
                // the Reduce key: "the Reduce key is a superset of F".
                if !self.key_set(b, side).is_subset(&reduce_key) {
                    return false;
                }
                // The Match UDF must forward each matched pair exactly once;
                // extra filtering or multiplication would alter key groups.
                if !pb.emits.exactly_one() {
                    return false;
                }
                // PK–FK: the other side must be unique on its join key, so
                // the join neither splits nor duplicates key groups.
                subtree_unique_on(
                    self.plan,
                    self.props,
                    subtrees[1 - side],
                    &self.key_set(b, 1 - side),
                )
            }
            _ => false,
        }
    }

    /// Can binary operator `p` (currently the parent) rotate with binary
    /// operator `c` (currently its child), pulling the grandchild subtree
    /// `keep` up to `p` and leaving `c` on top? This is join
    /// re-association: from `p(c(X, Y), T)` to `c(p(X, T), Y)` (`keep = 0`)
    /// or `c(X, p(Y, T))` (`keep = 1`); mirrored when `c` is `p`'s right
    /// child.
    ///
    /// * `grandchildren` — `c`'s subtrees `[X, Y]`,
    /// * `t_subtree` — `p`'s other subtree `T`.
    pub fn can_rotate_binary(
        &self,
        p: usize,
        c: usize,
        keep: usize,
        grandchildren: [&PlanNode; 2],
        t_subtree: &PlanNode,
    ) -> bool {
        let (pp, pc) = (self.props.get(p), self.props.get(c));
        // Both must be record-at-a-time binaries (Match/Cross): the rotation
        // is derived from the Map∘Cross decomposition (Lemma 1).
        if !matches!(self.pact(p), Pact::Match { .. } | Pact::Cross)
            || !matches!(self.pact(c), Pact::Match { .. } | Pact::Cross)
        {
            return false;
        }
        if !roc(pp, pc) {
            return false;
        }
        // p must not touch the displaced subtree or anything c creates.
        let displaced = self.plan.attrs_of(grandchildren[1 - keep]).union(&pc.added);
        if !pp.accessed().is_disjoint(&displaced) {
            return false;
        }
        // After rotation, T's records flow through c: c must not drop or
        // clobber T attributes (relevant when c's UDF implicitly projects).
        let t_attrs = self.plan.attrs_of(t_subtree);
        pc.write.is_disjoint(&t_attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropTable;
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};
    use strato_record::AttrId;
    use strato_sca::EmitBounds;

    fn props(read: &[u32], write: &[u32], control: &[u32], emits: EmitBounds) -> OpProps {
        OpProps {
            read: read.iter().map(|&i| AttrId(i)).collect(),
            write: write.iter().map(|&i| AttrId(i)).collect(),
            control: control.iter().map(|&i| AttrId(i)).collect(),
            emits,
            added: AttrSet::new(),
        }
    }

    const ONE: EmitBounds = EmitBounds {
        min: 1,
        max: Some(1),
    };
    const FILTER: EmitBounds = EmitBounds {
        min: 0,
        max: Some(1),
    };

    #[test]
    fn roc_definition() {
        // Section 3: f1 (R={B}, W={B}) and f2 (R={A}, W=∅) do not conflict.
        let f1 = props(&[1], &[1], &[1], ONE);
        let f2 = props(&[0], &[], &[0], FILTER);
        assert!(roc(&f1, &f2));
        assert!(roc(&f2, &f1), "ROC is symmetric");
        // f2 (R={A}) conflicts with f3 (W={A}).
        let f3 = props(&[0, 1], &[0], &[], ONE);
        assert!(!roc(&f2, &f3));
        // Write-write conflicts.
        let g = props(&[], &[1], &[], ONE);
        assert!(!roc(&f1, &g));
    }

    #[test]
    fn kgp_definition() {
        let key: AttrSet = [AttrId(0)].into_iter().collect();
        // Case 1: always exactly one.
        assert!(kgp(&props(&[1], &[1], &[], ONE), &key));
        // Case 2: filter on the key.
        assert!(kgp(&props(&[0], &[], &[0], FILTER), &key));
        // Filter on a non-key attribute fails.
        assert!(!kgp(&props(&[1], &[], &[1], FILTER), &key));
        // Multi-emit fails.
        assert!(!kgp(
            &props(&[0], &[], &[0], EmitBounds { min: 0, max: None }),
            &key
        ));
    }

    // ---- End-to-end condition checks over small bound plans. ----

    fn filter_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn abs_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("abs", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let or = b.copy_input(0);
        let a = b.un(UnOp::Abs, v);
        b.set(or, field, a);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn add_fields_map(w: usize, x: usize, y: usize, dst: usize) -> Function {
        let mut b = FuncBuilder::new("add", UdfKind::Map, vec![w]);
        let vx = b.get_input(0, x);
        let vy = b.get_input(0, y);
        let s = b.bin(BinOp::Add, vx, vy);
        let or = b.copy_input(0);
        b.set(or, dst, s);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    /// The Section 3 pipeline: f1 → f2 → f3 over ⟨A, B⟩.
    fn section3_plan() -> (Plan, PropTable) {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("i", &["a", "b"], 10));
        let m1 = p.map("f1", abs_map(2, 1), CostHints::default(), s);
        let m2 = p.map("f2", filter_map(2, 0), CostHints::default(), m1);
        let m3 = p.map("f3", add_fields_map(2, 0, 1, 0), CostHints::default(), m2);
        let plan = p.finish(m3).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        (plan, t)
    }

    #[test]
    fn section3_swap_matrix() {
        let (plan, t) = section3_plan();
        let ctx = CondCtx::new(&plan, &t);
        let id = |name: &str| plan.ctx.ops.iter().position(|o| o.name == name).unwrap();
        // f1 ↔ f2 reorderable; f2 ↔ f3 and f1 ↔ f3 are not.
        assert!(ctx.can_swap_unary_unary(id("f1"), id("f2")));
        assert!(!ctx.can_swap_unary_unary(id("f2"), id("f3")));
        assert!(!ctx.can_swap_unary_unary(id("f1"), id("f3")));
    }

    #[test]
    fn map_reduce_swap_requires_kgp() {
        // §4.2.2 example: Map filters on odd values of A and B; Reduce sums
        // B grouping by A. The Map's control reads {A, B} ⊄ {A} ⇒ blocked.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("i", &["a", "b"], 10));
        let m = p.map(
            "odd",
            {
                let mut b = FuncBuilder::new("odd", UdfKind::Map, vec![2]);
                let a = b.get_input(0, 0);
                let bb = b.get_input(0, 1);
                let two = b.konst(2i64);
                let ra = b.bin(BinOp::Rem, a, two);
                let rb = b.bin(BinOp::Rem, bb, two);
                let both = b.bin(BinOp::And, ra, rb);
                let end = b.new_label();
                b.branch_not(both, end);
                let or = b.copy_input(0);
                b.emit(or);
                b.place(end);
                b.ret();
                b.finish().unwrap()
            },
            CostHints::default(),
            s,
        );
        let r = p.reduce(
            "sum",
            &[0],
            {
                let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![2]);
                let sum = b.konst(0i64);
                let it = b.iter_open(0);
                let done = b.new_label();
                let head = b.new_label();
                b.place(head);
                let rec = b.iter_next(it, done);
                let v = b.get(rec, 1);
                b.bin_into(sum, BinOp::Add, sum, v);
                b.jump(head);
                b.place(done);
                let it2 = b.iter_open(0);
                let nil = b.new_label();
                let first = b.iter_next(it2, nil);
                let or = b.copy(first);
                b.set(or, 2, sum);
                b.emit(or);
                b.place(nil);
                b.ret();
                b.finish().unwrap()
            },
            CostHints::default(),
            m,
        );
        let plan = p.finish(r).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        let ctx = CondCtx::new(&plan, &t);
        assert!(
            !ctx.can_swap_unary_unary(0, 1),
            "filter on non-key attribute must not cross the Reduce"
        );

        // A filter on the key alone may cross.
        let mut p2 = ProgramBuilder::new();
        let s2 = p2.source(SourceDef::new("i", &["a", "b"], 10));
        let m2 = p2.map("keyfilter", filter_map(2, 0), CostHints::default(), s2);
        let r2 = p2.reduce(
            "sum",
            &[0],
            {
                let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![2]);
                let it = b.iter_open(0);
                let nil = b.new_label();
                let first = b.iter_next(it, nil);
                let or = b.copy(first);
                b.emit(or);
                b.place(nil);
                b.ret();
                b.finish().unwrap()
            },
            CostHints::default(),
            m2,
        );
        let plan2 = p2.finish(r2).unwrap().bind().unwrap();
        let t2 = PropTable::build(&plan2, PropertyMode::Sca);
        let ctx2 = CondCtx::new(&plan2, &t2);
        assert!(ctx2.can_swap_unary_unary(0, 1));
    }
}
