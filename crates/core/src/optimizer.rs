//! The end-to-end optimizer: properties → enumeration → physical costing.

use crate::cost::CostWeights;
use crate::enumerate::enumerate_all;
use crate::physical::{best_physical, PhysPlan};
use crate::props::PropTable;
use std::time::Instant;
use strato_dataflow::{Plan, PropertyMode};

/// One costed alternative.
#[derive(Debug, Clone)]
pub struct RankedPlan {
    /// The logical operator order.
    pub plan: Plan,
    /// Its best physical realization.
    pub phys: PhysPlan,
    /// Estimated cost (same as `phys.total_cost`).
    pub cost: f64,
}

/// The optimizer's full output: every alternative, cost-ranked.
#[derive(Debug)]
pub struct OptimizerReport {
    /// Alternatives in ascending cost order. `ranked[0]` is the chosen plan.
    pub ranked: Vec<RankedPlan>,
    /// Number of logical orders enumerated.
    pub n_enumerated: usize,
    /// Wall time spent enumerating orders.
    pub enumeration: std::time::Duration,
    /// Wall time spent deriving operator properties.
    pub property_derivation: std::time::Duration,
    /// Wall time spent in physical optimization across all alternatives.
    pub physical: std::time::Duration,
}

impl OptimizerReport {
    /// The cheapest alternative.
    pub fn best(&self) -> &RankedPlan {
        &self.ranked[0]
    }

    /// The rank (0-based) of the plan with the given canonical form.
    pub fn rank_of(&self, canonical: &str) -> Option<usize> {
        self.ranked
            .iter()
            .position(|r| r.plan.canonical() == canonical)
    }
}

/// The black-box data flow optimizer.
///
/// ```
/// use strato_core::Optimizer;
/// use strato_dataflow::spec::{CmpOp, FlowSpec, MapUdf, NodeSpec, OpSpec, SourceSpec};
/// use strato_dataflow::PropertyMode;
///
/// // source(a, b) → filter a ≥ 0 → filter b ≥ 0: the two filters commute,
/// // so SCA-derived properties let the optimizer enumerate both orders.
/// let plan = FlowSpec::new(NodeSpec::op(
///     OpSpec::map("fb", MapUdf::filter_cmp(1, CmpOp::Ge, 0i64)),
///     vec![NodeSpec::op(
///         OpSpec::map("fa", MapUdf::filter_cmp(0, CmpOp::Ge, 0i64)),
///         vec![NodeSpec::source(SourceSpec::new("s", &["a", "b"], 1_000))],
///     )],
/// ))
/// .build()
/// .unwrap();
///
/// let report = Optimizer::new(PropertyMode::Sca).with_dop(4).optimize(&plan);
/// assert_eq!(report.n_enumerated, 2);
/// // ranked[0] is the winner; `best` returns it directly.
/// assert_eq!(report.best().cost, report.ranked[0].cost);
/// ```
#[derive(Debug, Clone)]
pub struct Optimizer {
    /// Which property source to consult (Table 1's two columns).
    pub mode: PropertyMode,
    /// Cost weights.
    pub weights: CostWeights,
    /// Degree of parallelism assumed by the cost model.
    pub dop: usize,
    /// Safety cap on the number of enumerated alternatives.
    pub cap: usize,
}

impl Optimizer {
    /// An optimizer with default weights, DOP 8 and a 100k-plan cap.
    pub fn new(mode: PropertyMode) -> Self {
        Optimizer {
            mode,
            weights: CostWeights::default(),
            dop: 8,
            cap: 100_000,
        }
    }

    /// Overrides the cost weights.
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Overrides the degree of parallelism.
    pub fn with_dop(mut self, dop: usize) -> Self {
        self.dop = dop;
        self
    }

    /// Overrides the enumeration cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    /// Derives properties, enumerates all valid orders, costs each
    /// alternative's best physical plan and ranks ascending by cost.
    pub fn optimize(&self, plan: &Plan) -> OptimizerReport {
        let t0 = Instant::now();
        let props = PropTable::build(plan, self.mode);
        let property_derivation = t0.elapsed();

        let t1 = Instant::now();
        let alts = enumerate_all(plan, &props, self.cap);
        let enumeration = t1.elapsed();

        let t2 = Instant::now();
        let mut ranked: Vec<RankedPlan> = alts
            .into_iter()
            .map(|p| {
                let phys = best_physical(&p, &props, &self.weights, self.dop);
                RankedPlan {
                    cost: phys.total_cost,
                    phys,
                    plan: p,
                }
            })
            .collect();
        let physical = t2.elapsed();
        ranked.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        OptimizerReport {
            n_enumerated: ranked.len(),
            ranked,
            enumeration,
            property_derivation,
            physical,
        }
    }

    /// Convenience: optimize and return only the winner.
    pub fn best(&self, plan: &Plan) -> RankedPlan {
        let mut report = self.optimize(plan);
        report.ranked.swap_remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};

    fn filter_map(w: usize, field: usize, sel: f64) -> (Function, CostHints) {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        (b.finish().unwrap(), CostHints::selectivity(sel))
    }

    fn expensive_map(w: usize, cpu: f64) -> (Function, CostHints) {
        let mut b = FuncBuilder::new("heavy", UdfKind::Map, vec![w]);
        let or = b.copy_input(0);
        let v = b.get_input(0, 0);
        let cost = b.konst(1000i64);
        let burnt = b.call(strato_ir::Intrinsic::Burn, vec![cost, v]);
        b.set(or, w, burnt);
        b.emit(or);
        b.ret();
        (
            b.finish().unwrap(),
            CostHints::selectivity(1.0).with_cpu(cpu),
        )
    }

    /// A selective cheap filter below an expensive map should be pushed
    /// below it by the optimizer (classic selection push-down, discovered
    /// purely from black-box properties).
    #[test]
    fn optimizer_pushes_selective_filter_below_expensive_map() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 100_000).with_bytes_per_row(32));
        let (heavy, heavy_h) = expensive_map(2, 500.0);
        let m1 = p.map("heavy", heavy, heavy_h, s);
        let (filt, filt_h) = filter_map(3, 1, 0.01);
        let m2 = p.map("filter", filt, filt_h, m1);
        let plan = p.finish(m2).unwrap().bind().unwrap();

        let report = Optimizer::new(PropertyMode::Sca).optimize(&plan);
        assert_eq!(report.n_enumerated, 2, "filter and heavy map must swap");
        let best = report.best();
        // In the winning order the filter must run first (deeper in the
        // tree = earlier), i.e. pre-order shows heavy before filter.
        let names: Vec<&str> = best
            .plan
            .op_order()
            .into_iter()
            .map(|o| best.plan.ctx.ops[o].name.as_str())
            .collect();
        assert_eq!(names, vec!["heavy", "filter"], "filter pushed below heavy");
        assert!(best.cost < report.ranked[1].cost);
    }

    #[test]
    fn report_rank_of_finds_original() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 1000));
        let (f1, h1) = filter_map(2, 0, 0.5);
        let m1 = p.map("f1", f1, h1, s);
        let (f2, h2) = filter_map(2, 1, 0.5);
        let m2 = p.map("f2", f2, h2, m1);
        let plan = p.finish(m2).unwrap().bind().unwrap();
        let report = Optimizer::new(PropertyMode::Sca).optimize(&plan);
        assert!(report.rank_of(&plan.canonical()).is_some());
        assert_eq!(report.rank_of("nonsense"), None);
        assert!(report.enumeration.as_nanos() > 0);
        assert!(report.property_derivation.as_nanos() > 0);
        let _ = report.physical;
    }

    #[test]
    fn best_returns_cheapest() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 10_000));
        let (f1, h1) = filter_map(2, 0, 0.01);
        let m1 = p.map("selective", f1, h1, s);
        let (f2, h2) = filter_map(2, 1, 0.9);
        let m2 = p.map("loose", f2, h2, m1);
        let plan = p.finish(m2).unwrap().bind().unwrap();
        let opt = Optimizer::new(PropertyMode::Sca);
        let best = opt.best(&plan);
        let report = opt.optimize(&plan);
        assert_eq!(best.cost, report.best().cost);
    }
}
