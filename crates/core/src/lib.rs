//! # strato-core — the black-box data flow optimizer
//!
//! The primary contribution of *"Opening the Black Boxes in Data Flow
//! Optimization"* (Hueske et al., VLDB 2012), implemented from scratch:
//!
//! * [`props`] — per-operator **global** read/write/control attribute sets
//!   derived from SCA results (or manual annotations) through the
//!   redirection maps, including the paper's rules that Match/CoGroup keys
//!   join the read set and that implicit projection writes *every*
//!   attribute it does not explicitly preserve;
//! * [`conditions`] — the reordering conditions of Section 4: the ROC
//!   condition (Definition 4), the KGP condition (Definition 5), Map/Map
//!   and Map/Reduce swaps (Theorems 1–2), pushing unary operators through
//!   binary ones (Theorem 3, Lemma 1), the invariant-grouping rewrite
//!   (Theorem 4 and Section 4.3.2) gated on PK–FK constraints, and binary
//!   "rotations" (join re-association derived from the `Match ≡ Map∘Cross`
//!   decomposition);
//! * [`constraints`] — uniqueness propagation through operators (the
//!   substrate for the PK–FK precondition);
//! * [`enumerate`] — plan enumeration: a faithful port of the paper's
//!   **Algorithm 1** for unary flows plus a closure enumerator (BFS over
//!   single valid moves with canonical-form memoization) that handles
//!   arbitrary tree-shaped flows and serves as the correctness oracle;
//! * [`cost`] — the hint-driven cost model (network IO + disk IO + CPU per
//!   UDF call);
//! * [`physical`] — shipping strategies (forward / hash repartition /
//!   broadcast) and local strategies (hash/sort grouping, hash join with
//!   build-side choice, sort-merge join, block nested loops), selected
//!   per logical order with partitioning-property reuse;
//! * `optimizer` — the end-to-end [`Optimizer`]:
//!   derive properties → enumerate orders → cost each physical alternative
//!   → rank.

#![warn(missing_docs)]

pub mod conditions;
pub mod constraints;
pub mod cost;
pub mod enumerate;
pub mod physical;
pub mod props;

mod optimizer;

pub use conditions::roc;
pub use enumerate::{enumerate_algorithm1, enumerate_all, neighbors};
pub use optimizer::{Optimizer, OptimizerReport, RankedPlan};
pub use physical::{LocalStrategy, PhysNode, PhysPlan, Ship};
pub use props::{OpProps, PropTable};
