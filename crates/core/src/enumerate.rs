//! Plan enumeration (Section 6 of the paper).
//!
//! Two enumerators are provided:
//!
//! * [`enumerate_algorithm1`] — a faithful port of the paper's
//!   **Algorithm 1** ("Enumeration of Alternative Data Flows"): recursive
//!   enumeration of sub-flow alternatives with root/candidate exchanges, a
//!   memo table keyed by the flow's canonical form, and the
//!   enumerate-each-candidate-root-once rule. As published it handles
//!   single-input operators, i.e. linear flows.
//! * [`enumerate_all`] — the generalization to arbitrary **tree-shaped**
//!   flows (the paper notes its implementation "can, in fact, handle binary
//!   operators"): a breadth-first closure over all valid *single* moves
//!   (unary–unary swaps, unary↔binary exchanges, binary rotations) with
//!   canonical-form deduplication. On linear flows both enumerators
//!   provably agree (see tests), which is how we validate the closure.
//!
//! Both return every data flow derivable by valid pairwise reorderings,
//! with the original flow first.

use crate::conditions::CondCtx;
use crate::props::PropTable;
use std::collections::VecDeque;
use std::sync::Arc;
use strato_dataflow::{NodeKind, Plan, PlanNode};
use strato_record::hash::{FxHashMap, FxHashSet};

/// All plans reachable from `plan` by exactly one valid reordering move.
pub fn neighbors(plan: &Plan, props: &PropTable) -> Vec<Plan> {
    let ctx = CondCtx::new(plan, props);
    subtree_alts(plan, &ctx, &plan.root)
        .into_iter()
        .map(|r| plan.with_root(r))
        .collect()
}

/// Enumerates the full space of valid reordered data flows: the transitive
/// closure of single moves, capped at `cap` plans as a safety net for
/// adversarial inputs. The original plan is first.
pub fn enumerate_all(plan: &Plan, props: &PropTable, cap: usize) -> Vec<Plan> {
    let mut seen: FxHashSet<String> = FxHashSet::default();
    let mut out: Vec<Plan> = Vec::new();
    let mut queue: VecDeque<Plan> = VecDeque::new();
    seen.insert(plan.canonical());
    out.push(plan.clone());
    queue.push_back(plan.clone());
    while let Some(p) = queue.pop_front() {
        if out.len() >= cap {
            break;
        }
        for n in neighbors(&p, props) {
            if seen.insert(n.canonical()) {
                out.push(n.clone());
                queue.push_back(n);
                if out.len() >= cap {
                    break;
                }
            }
        }
    }
    out
}

/// All alternatives for this subtree obtained by one move *within* it.
fn subtree_alts(plan: &Plan, ctx: &CondCtx<'_>, node: &Arc<PlanNode>) -> Vec<Arc<PlanNode>> {
    let NodeKind::Op(p) = node.kind else {
        return vec![];
    };
    let mut out = junction_moves(plan, ctx, node);
    for (i, child) in node.children.iter().enumerate() {
        for alt in subtree_alts(plan, ctx, child) {
            let mut kids = node.children.clone();
            kids[i] = alt;
            out.push(PlanNode::op(p, kids));
        }
    }
    out
}

/// Moves exchanging the root of `node` with one of its operator children.
fn junction_moves(_plan: &Plan, ctx: &CondCtx<'_>, node: &Arc<PlanNode>) -> Vec<Arc<PlanNode>> {
    let NodeKind::Op(p) = node.kind else {
        return vec![];
    };
    let mut out = Vec::new();
    let p_unary = node.children.len() == 1;
    for (i, child) in node.children.iter().enumerate() {
        let NodeKind::Op(c) = child.kind else {
            continue;
        };
        let c_unary = child.children.len() == 1;
        match (p_unary, c_unary) {
            // Theorems 1–2 and the Reduce/Reduce extension.
            (true, true) => {
                if ctx.can_swap_unary_unary(p, c) {
                    out.push(PlanNode::op(
                        c,
                        vec![PlanNode::op(p, child.children.clone())],
                    ));
                }
            }
            // Push the unary root below its binary child (Theorem 3,
            // Lemma 1, invariant grouping).
            (true, false) => {
                for side in 0..2 {
                    let subtrees = [&*child.children[0], &*child.children[1]];
                    if ctx.can_exchange_unary_binary(p, c, side, subtrees) {
                        let mut kids = child.children.clone();
                        kids[side] = PlanNode::op(p, vec![child.children[side].clone()]);
                        out.push(PlanNode::op(c, kids));
                    }
                }
            }
            // Pull a unary child above its binary parent (inverse of the
            // previous move; the equivalence condition is the same).
            (false, true) => {
                let mut subtree_nodes = node.children.clone();
                subtree_nodes[i] = child.children[0].clone();
                let subtrees = [&*subtree_nodes[0], &*subtree_nodes[1]];
                if ctx.can_exchange_unary_binary(c, p, i, subtrees) {
                    out.push(PlanNode::op(c, vec![PlanNode::op(p, subtree_nodes)]));
                }
            }
            // Binary–binary rotation (join re-association).
            (false, false) => {
                let t = &node.children[1 - i];
                for keep in 0..2 {
                    let grandchildren = [&*child.children[0], &*child.children[1]];
                    if ctx.can_rotate_binary(p, c, keep, grandchildren, t) {
                        let mut new_p_kids = node.children.clone();
                        new_p_kids[i] = child.children[keep].clone();
                        let new_p = PlanNode::op(p, new_p_kids);
                        let mut new_c_kids = child.children.clone();
                        new_c_kids[keep] = new_p;
                        out.push(PlanNode::op(c, new_c_kids));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Algorithm 1 — faithful port for linear flows.
// ---------------------------------------------------------------------------

/// Enumerates all valid orders of a **linear** operator chain, exactly as
/// Algorithm 1 of the paper. `chain` lists operator ids from the root
/// (sink side) down to the operator above the source; `reorderable(r, s)`
/// answers whether two operators may swap.
///
/// Returns every alternative chain (original first, then in discovery
/// order, de-duplicated).
pub fn algorithm1_chain(
    chain: &[usize],
    reorderable: &dyn Fn(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    let mut memo: FxHashMap<Vec<usize>, Vec<Vec<usize>>> = FxHashMap::default();
    let result = enum_alternatives(chain, reorderable, &mut memo);
    // De-duplicate preserving order (the memo already prevents most
    // duplicates; candidate exchanges can still revisit).
    let mut seen: FxHashSet<Vec<usize>> = FxHashSet::default();
    let mut out = Vec::new();
    for alt in result {
        if seen.insert(alt.clone()) {
            out.push(alt);
        }
    }
    // Put the original order first for parity with `enumerate_all`.
    if let Some(pos) = out.iter().position(|a| a == chain) {
        out.swap(0, pos);
    }
    out
}

/// The recursive body of Algorithm 1 (lines 1–29 of the paper's listing).
fn enum_alternatives(
    d: &[usize],
    reorderable: &dyn Fn(usize, usize) -> bool,
    memo: &mut FxHashMap<Vec<usize>, Vec<Vec<usize>>>,
) -> Vec<Vec<usize>> {
    // Line 4: check memo table.
    if let Some(cached) = memo.get(d) {
        return cached.clone();
    }
    // Line 8: the data source ends the recursion (empty chain = source).
    if d.is_empty() {
        return vec![vec![]];
    }
    // Line 7: r = getRoot(D).
    let r = d[0];
    let d_minus_r = &d[1..];
    let mut alts: Vec<Vec<usize>> = Vec::new();
    let mut cand: FxHashSet<usize> = FxHashSet::default();
    // Line 18: recursively enumerate D − r.
    let alts_minus_r = enum_alternatives(d_minus_r, reorderable, memo);
    for a_minus_r in &alts_minus_r {
        // Line 21: re-add r as root.
        let mut with_r = Vec::with_capacity(d.len());
        with_r.push(r);
        with_r.extend_from_slice(a_minus_r);
        alts.push(with_r);
        // Lines 20–27: candidate roots s.
        if let Some(&s) = a_minus_r.first() {
            if !cand.contains(&s) && reorderable(r, s) {
                // enumerate each candidate root once
                cand.insert(s);
                // Line 24: D − s = setRoot(A − r, r).
                let mut d_minus_s = Vec::with_capacity(a_minus_r.len());
                d_minus_s.push(r);
                d_minus_s.extend_from_slice(&a_minus_r[1..]);
                // Line 25: recurse.
                let alts_minus_s = enum_alternatives(&d_minus_s, reorderable, memo);
                // Lines 26–27: append s to each alternative.
                for a_minus_s in alts_minus_s {
                    let mut with_s = Vec::with_capacity(d.len());
                    with_s.push(s);
                    with_s.extend(a_minus_s);
                    alts.push(with_s);
                }
            }
        }
    }
    // Line 28: fill memo table.
    memo.insert(d.to_vec(), alts.clone());
    alts
}

/// Runs Algorithm 1 over a bound plan whose tree is a linear chain of
/// unary operators over a single source. Returns `None` when the plan has
/// binary operators (use [`enumerate_all`] instead).
pub fn enumerate_algorithm1(plan: &Plan, props: &PropTable) -> Option<Vec<Plan>> {
    // Extract the chain root→bottom.
    let mut chain = Vec::new();
    let mut node = &plan.root;
    while let NodeKind::Op(o) = node.kind {
        if node.children.len() != 1 {
            return None;
        }
        chain.push(o);
        node = &node.children[0];
    }
    let source = node.clone();
    let ctx = CondCtx::new(plan, props);
    let reorderable = |r: usize, s: usize| ctx.can_swap_unary_unary(r, s);
    let alts = algorithm1_chain(&chain, &reorderable);
    Some(
        alts.into_iter()
            .map(|order| {
                let mut tree = source.clone();
                for &op in order.iter().rev() {
                    tree = PlanNode::op(op, vec![tree]);
                }
                plan.with_root(tree)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};

    #[test]
    fn algorithm1_reproduces_the_papers_worked_example() {
        // Section 6: Src → Map1 → Map2 → Map3; all pairs reorderable except
        // Map2/Map3. Expected alternatives (in flow order from the source):
        // [1,2,3], [2,1,3], [2,3,1].
        let reorderable = |a: usize, b: usize| !matches!((a, b), (2, 3) | (3, 2));
        // Chain is root-first: [3, 2, 1].
        let alts = algorithm1_chain(&[3, 2, 1], &reorderable);
        let mut flows: Vec<Vec<usize>> = alts
            .iter()
            .map(|c| c.iter().rev().copied().collect())
            .collect();
        flows.sort();
        assert_eq!(flows, vec![vec![1, 2, 3], vec![2, 1, 3], vec![2, 3, 1]]);
    }

    #[test]
    fn algorithm1_fully_reorderable_chain_yields_all_permutations() {
        let reorderable = |_: usize, _: usize| true;
        let alts = algorithm1_chain(&[1, 2, 3, 4], &reorderable);
        assert_eq!(alts.len(), 24);
    }

    #[test]
    fn algorithm1_no_reorders_yields_single_plan() {
        let reorderable = |_: usize, _: usize| false;
        let alts = algorithm1_chain(&[1, 2, 3], &reorderable);
        assert_eq!(alts, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn algorithm1_partial_order_counts_linear_extensions() {
        // Ops 1..=4 where only (1,2) may swap and only (3,4) may swap:
        // alternatives = 2 × 2 = 4.
        let reorderable = |a: usize, b: usize| matches!((a, b), (1, 2) | (2, 1) | (3, 4) | (4, 3));
        let alts = algorithm1_chain(&[4, 3, 2, 1], &reorderable);
        assert_eq!(alts.len(), 4);
    }

    // ---- Plan-level equivalence between Algorithm 1 and the closure. ----

    fn filter_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn abs_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("abs", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let or = b.copy_input(0);
        let a = b.un(UnOp::Abs, v);
        b.set(or, field, a);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn chain_plan() -> Plan {
        // Four maps over a 4-attr record, touching fields 0..3 in patterns
        // that give a non-trivial partial order.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b", "c", "d"], 10));
        let m1 = p.map("w0", abs_map(4, 0), CostHints::default(), s);
        let m2 = p.map("r1", filter_map(4, 1), CostHints::default(), m1);
        let m3 = p.map("w2", abs_map(4, 2), CostHints::default(), m2);
        let m4 = p.map("r0", filter_map(4, 0), CostHints::default(), m3);
        p.finish(m4).unwrap().bind().unwrap()
    }

    #[test]
    fn closure_and_algorithm1_agree_on_linear_flows() {
        let plan = chain_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let a1: FxHashSet<String> = enumerate_algorithm1(&plan, &props)
            .expect("linear")
            .iter()
            .map(|p| p.canonical())
            .collect();
        let cl: FxHashSet<String> = enumerate_all(&plan, &props, 10_000)
            .iter()
            .map(|p| p.canonical())
            .collect();
        assert_eq!(a1, cl);
        assert!(a1.len() > 1, "space should be non-trivial: {}", a1.len());
    }

    #[test]
    fn closure_contains_original_first() {
        let plan = chain_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let all = enumerate_all(&plan, &props, 10_000);
        assert_eq!(all[0].canonical(), plan.canonical());
    }

    #[test]
    fn neighbors_are_single_moves() {
        let plan = chain_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        for n in neighbors(&plan, &props) {
            assert_ne!(n.canonical(), plan.canonical());
            // A single unary swap keeps the op count.
            assert_eq!(n.root.n_ops(), plan.root.n_ops());
        }
    }

    #[test]
    fn enumerate_algorithm1_rejects_binary_flows() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a"], 10));
        let r = p.source(SourceDef::new("r", &["b"], 10));
        let join = {
            let mut b = FuncBuilder::new("j", UdfKind::Pair, vec![1, 1]);
            let or = b.concat_inputs();
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        };
        let j = p.match_("j", &[0], &[0], join, CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        assert!(enumerate_algorithm1(&plan, &props).is_none());
        // The closure handles it fine.
        assert_eq!(enumerate_all(&plan, &props, 100).len(), 1);
    }

    #[test]
    fn cap_limits_enumeration() {
        let plan = chain_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let capped = enumerate_all(&plan, &props, 2);
        assert_eq!(capped.len(), 2);
    }
}
