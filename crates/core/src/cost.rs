//! Cardinality estimation and the cost model.
//!
//! Section 7.1 of the paper: "The cost model is a combination of network
//! IO, disk IO, and CPU costs of UDF calls. For result size and cost
//! estimations, the optimizer relies on hints such as 'Average Number of
//! Records Emitted per UDF Call', 'CPU Cost per UDF Call', and 'Number of
//! Distinct Values per Key-Set'." This module implements exactly that:
//! hint-driven cardinality propagation plus weighted cost terms. Absolute
//! values are unit-less; only plan *ranking* matters.

use strato_dataflow::{BoundOp, NodeKind, Pact, Plan, PlanNode};

/// Default per-worker memory budget in bytes, shared between the cost
/// model's spill charge ([`CostWeights::mem_budget`]) and the execution
/// engine's `ExecOptions::mem_budget` default — the optimizer's spill
/// penalties and the runtime's actual spill-to-disk behavior are keyed to
/// the **same** threshold, so a plan charged for spilling really spills.
pub const DEFAULT_MEM_BUDGET_BYTES: u64 = 48 * 1024 * 1024;

/// Default **machine-wide** memory budget of a shared engine runtime
/// (`strato-exec`'s `EngineRuntime`): the pool per-query budgets are
/// carved from when many queries run concurrently on one process. Sized
/// as a handful of default per-query budgets so a lightly loaded runtime
/// grants every query its full [`DEFAULT_MEM_BUDGET_BYTES`] while a
/// saturated one degrades to spilling instead of oversubscribing RAM.
pub const DEFAULT_GLOBAL_MEM_BUDGET_BYTES: u64 = 8 * DEFAULT_MEM_BUDGET_BYTES;

/// Weights combining the three cost dimensions, plus the memory budget that
/// decides when sort/hash strategies spill to disk.
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Cost per byte shipped over the network.
    pub net: f64,
    /// Cost per byte spilled to / read from disk.
    pub disk: f64,
    /// Cost per UDF cpu unit and per record-processing step.
    pub cpu: f64,
    /// Bytes a single worker can hold before sort/hash spills.
    pub mem_budget: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            net: 1.0,
            disk: 0.6,
            cpu: 0.15,
            mem_budget: DEFAULT_MEM_BUDGET_BYTES as f64,
        }
    }
}

/// A cardinality estimate for one plan node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Est {
    /// Estimated record count.
    pub rows: f64,
    /// Estimated bytes per record.
    pub bytes_per_row: f64,
    /// Estimated UDF invocations performed by this node (0 for sources).
    pub calls: f64,
}

impl Est {
    /// Total estimated bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * self.bytes_per_row
    }
}

/// Default ratio of distinct keys to input rows when no hint is given.
const DEFAULT_KEY_RATIO: f64 = 0.1;

/// Estimated number of groups a Reduce forms over `input_rows` records:
/// the distinct-keys hint when present, else the default key ratio,
/// clamped to `[1, input_rows]`. Shared by cardinality estimation and the
/// combiner's shipped-volume estimate in physical selection.
pub fn reduce_groups(op: &BoundOp, input_rows: f64) -> f64 {
    op.hints
        .distinct_keys
        .map(|k| k as f64)
        .unwrap_or(input_rows * DEFAULT_KEY_RATIO)
        .min(input_rows)
        .max(1.0)
}

/// Estimates output cardinality, width and UDF calls for a subtree.
///
/// Hints travel with operators, so an operator's selectivity and CPU cost
/// are position-independent — exactly the model the paper's optimizer uses
/// when costing reordered alternatives.
pub fn estimate(plan: &Plan, node: &PlanNode) -> Est {
    match node.kind {
        NodeKind::Source(s) => {
            let src = &plan.ctx.sources[s];
            Est {
                rows: src.est_rows as f64,
                bytes_per_row: src.est_bytes_per_row as f64,
                calls: 0.0,
            }
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let sel = op.hints.avg_emits_per_call.max(0.0);
            let added_bytes = 9.0 * op.added_attrs.len() as f64;
            match &op.pact {
                Pact::Map => {
                    let c = estimate(plan, &node.children[0]);
                    let calls = c.rows;
                    Est {
                        rows: calls * sel,
                        bytes_per_row: op
                            .hints
                            .avg_record_bytes
                            .map(|b| b as f64)
                            .unwrap_or(c.bytes_per_row + added_bytes),
                        calls,
                    }
                }
                Pact::Reduce { .. } => {
                    let c = estimate(plan, &node.children[0]);
                    let groups = reduce_groups(op, c.rows);
                    Est {
                        rows: groups * sel,
                        bytes_per_row: op
                            .hints
                            .avg_record_bytes
                            .map(|b| b as f64)
                            .unwrap_or(c.bytes_per_row + added_bytes),
                        calls: groups,
                    }
                }
                Pact::Match { .. } => {
                    let l = estimate(plan, &node.children[0]);
                    let r = estimate(plan, &node.children[1]);
                    let domain = op
                        .hints
                        .distinct_keys
                        .map(|k| k as f64)
                        .unwrap_or_else(|| l.rows.min(r.rows))
                        .max(1.0);
                    let pairs = l.rows * r.rows / domain;
                    Est {
                        rows: pairs * sel,
                        bytes_per_row: op
                            .hints
                            .avg_record_bytes
                            .map(|b| b as f64)
                            .unwrap_or(l.bytes_per_row + r.bytes_per_row + added_bytes),
                        calls: pairs,
                    }
                }
                Pact::Cross => {
                    let l = estimate(plan, &node.children[0]);
                    let r = estimate(plan, &node.children[1]);
                    let pairs = l.rows * r.rows;
                    Est {
                        rows: pairs * sel,
                        bytes_per_row: op
                            .hints
                            .avg_record_bytes
                            .map(|b| b as f64)
                            .unwrap_or(l.bytes_per_row + r.bytes_per_row + added_bytes),
                        calls: pairs,
                    }
                }
                Pact::CoGroup { .. } => {
                    let l = estimate(plan, &node.children[0]);
                    let r = estimate(plan, &node.children[1]);
                    let groups = op
                        .hints
                        .distinct_keys
                        .map(|k| k as f64)
                        .unwrap_or_else(|| (l.rows.max(r.rows)) * DEFAULT_KEY_RATIO)
                        .max(1.0);
                    Est {
                        rows: groups * sel,
                        bytes_per_row: op
                            .hints
                            .avg_record_bytes
                            .map(|b| b as f64)
                            .unwrap_or(l.bytes_per_row + r.bytes_per_row + added_bytes),
                        calls: groups,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, SourceDef};
    use strato_ir::{FuncBuilder, Function, UdfKind};

    fn identity_map(w: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![w]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn group_first(w: usize) -> Function {
        let mut b = FuncBuilder::new("first", UdfKind::Group, vec![w]);
        let it = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it, nil);
        let or = b.copy(first);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn map_selectivity_scales_rows() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a"], 1000).with_bytes_per_row(10));
        let m = p.map("f", identity_map(1), CostHints::selectivity(0.25), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let e = estimate(&plan, &plan.root);
        assert_eq!(e.rows, 250.0);
        assert_eq!(e.calls, 1000.0);
        assert_eq!(e.bytes_per_row, 10.0);
    }

    #[test]
    fn reduce_uses_distinct_keys_hint() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 1000));
        let r = p.reduce(
            "g",
            &[0],
            group_first(2),
            CostHints::selectivity(1.0).with_distinct_keys(50),
            s,
        );
        let plan = p.finish(r).unwrap().bind().unwrap();
        let e = estimate(&plan, &plan.root);
        assert_eq!(e.rows, 50.0);
        assert_eq!(e.calls, 50.0);
    }

    #[test]
    fn reduce_defaults_to_key_ratio() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k"], 1000));
        let r = p.reduce("g", &[0], group_first(1), CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        let e = estimate(&plan, &plan.root);
        assert_eq!(e.rows, 100.0);
    }

    #[test]
    fn match_pairs_use_key_domain() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k"], 1000).with_bytes_per_row(8));
        let r = p.source(SourceDef::new("r", &["k"], 100).with_bytes_per_row(8));
        let j = p.match_(
            "j",
            &[0],
            &[0],
            join_udf(1, 1),
            CostHints::default().with_distinct_keys(100),
            l,
            r,
        );
        let plan = p.finish(j).unwrap().bind().unwrap();
        let e = estimate(&plan, &plan.root);
        // 1000 × 100 / 100 = 1000 pairs.
        assert_eq!(e.rows, 1000.0);
        assert_eq!(e.calls, 1000.0);
        assert_eq!(e.bytes_per_row, 16.0);
    }

    #[test]
    fn cross_is_quadratic() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a"], 30));
        let r = p.source(SourceDef::new("r", &["b"], 20));
        let c = p.cross("x", join_udf(1, 1), CostHints::default(), l, r);
        let plan = p.finish(c).unwrap().bind().unwrap();
        let e = estimate(&plan, &plan.root);
        assert_eq!(e.rows, 600.0);
    }

    #[test]
    fn estimates_are_position_independent_for_hints() {
        // Two filters with the same hints give the same final rows in
        // either order (selectivities multiply).
        let mk = |order_ab: bool| {
            let mut p = ProgramBuilder::new();
            let s = p.source(SourceDef::new("s", &["a", "b"], 1000));
            let (sel1, sel2) = (0.5, 0.2);
            let (h1, h2) = (CostHints::selectivity(sel1), CostHints::selectivity(sel2));
            let m = if order_ab {
                let m1 = p.map("f1", identity_map(2), h1, s);
                p.map("f2", identity_map(2), h2, m1)
            } else {
                let m2 = p.map("f2", identity_map(2), h2, s);
                p.map("f1", identity_map(2), h1, m2)
            };
            let plan = p.finish(m).unwrap().bind().unwrap();
            estimate(&plan, &plan.root).rows
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn est_bytes() {
        let e = Est {
            rows: 10.0,
            bytes_per_row: 4.0,
            calls: 0.0,
        };
        assert_eq!(e.bytes(), 40.0);
    }
}
