//! Uniqueness-constraint propagation.
//!
//! The invariant-grouping rewrite of Section 4.3.2 requires a PK–FK shape:
//! "Assume that F is a foreign key to K" — i.e. the Match's *other* side is
//! unique on its join key, so joining neither duplicates nor splits the
//! reduce's key groups. Sources declare unique keys
//! ([`strato_dataflow::SourceDef::with_unique_key`]); this module propagates
//! them through operators:
//!
//! * a RAT operator that emits at most one record per invocation and does
//!   not write the key preserves uniqueness,
//! * a Reduce with ≤ 1 emit per group is unique on its grouping key (and
//!   keeps its input's uniqueness),
//! * a Match preserves a side's uniqueness when the opposite side is unique
//!   on its join key (each record finds at most one partner) and the UDF
//!   emits at most one record per pair,
//! * Cross and multi-emit UDFs destroy uniqueness.

use crate::props::PropTable;
use strato_dataflow::{NodeKind, Pact, Plan, PlanNode};
use strato_record::AttrSet;

/// `true` if the records produced by `node` are provably unique on `key`
/// (no two records share the same values of all `key` attributes).
pub fn subtree_unique_on(plan: &Plan, props: &PropTable, node: &PlanNode, key: &AttrSet) -> bool {
    if key.is_empty() {
        return false;
    }
    match node.kind {
        NodeKind::Source(s) => plan.ctx.sources[s].unique.iter().any(|u| u.is_subset(key)),
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let p = props.get(o);
            // Writing a key attribute destroys the constraint.
            if !p.write.is_disjoint(key) {
                return false;
            }
            match &op.pact {
                Pact::Map => {
                    p.emits.at_most_one() && subtree_unique_on(plan, props, &node.children[0], key)
                }
                Pact::Reduce { .. } => {
                    if !p.emits.at_most_one() {
                        return false;
                    }
                    // Unique on the grouping key (one emit per group), or
                    // the input was already unique on `key` (filtering and
                    // collapsing groups cannot introduce duplicates).
                    op.key_set(0).is_subset(key)
                        || subtree_unique_on(plan, props, &node.children[0], key)
                }
                Pact::Match { .. } => {
                    if !p.emits.at_most_one() {
                        return false;
                    }
                    let left_unique_side = subtree_unique_on(plan, props, &node.children[0], key)
                        && subtree_unique_on(plan, props, &node.children[1], &op.key_set(1));
                    let right_unique_side = subtree_unique_on(plan, props, &node.children[1], key)
                        && subtree_unique_on(plan, props, &node.children[0], &op.key_set(0));
                    left_unique_side || right_unique_side
                }
                Pact::Cross => false,
                Pact::CoGroup { .. } => p.emits.at_most_one() && op.key_set(0).is_subset(key),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};

    fn identity_map(w: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![w]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn filter_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn dup_map(w: usize) -> Function {
        let mut b = FuncBuilder::new("dup", UdfKind::Map, vec![w]);
        let or = b.copy_input(0);
        b.emit(or);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn key_set(plan: &Plan, name: &str) -> AttrSet {
        AttrSet::singleton(plan.ctx.global.by_name(name).unwrap())
    }

    #[test]
    fn source_unique_key_detected() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 10).with_unique_key(&[0]));
        let m = p.map("id", identity_map(2), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "s.a")
        ));
        assert!(!subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "s.b")
        ));
    }

    #[test]
    fn filter_preserves_uniqueness() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 10).with_unique_key(&[0]));
        let m = p.map("f", filter_map(2, 1), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "s.a")
        ));
    }

    #[test]
    fn duplicating_map_destroys_uniqueness() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a"], 10).with_unique_key(&[0]));
        let m = p.map("dup", dup_map(1), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(!subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "s.a")
        ));
    }

    #[test]
    fn pk_fk_match_preserves_fk_side_uniqueness() {
        // orders (unique on o_id) ⋈ customer (unique on c_id) on
        // orders.o_cust = customer.c_id: output still unique on o_id.
        let mut p = ProgramBuilder::new();
        let o = p.source(SourceDef::new("o", &["o_id", "o_cust"], 100).with_unique_key(&[0]));
        let c = p.source(SourceDef::new("c", &["c_id"], 10).with_unique_key(&[0]));
        let j = p.match_("j", &[1], &[0], join_udf(2, 1), CostHints::default(), o, c);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "o.o_id")
        ));
        // Not unique on the customer key: many orders per customer.
        assert!(!subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "c.c_id")
        ));
    }

    #[test]
    fn match_with_non_unique_other_side_loses_uniqueness() {
        let mut p = ProgramBuilder::new();
        let o = p.source(SourceDef::new("o", &["o_id", "o_cust"], 100).with_unique_key(&[0]));
        // No unique key on the info table: one order may join many rows.
        let c = p.source(SourceDef::new("info", &["user", "kv"], 10));
        let j = p.match_("j", &[1], &[0], join_udf(2, 2), CostHints::default(), o, c);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(!subtree_unique_on(
            &plan,
            &t,
            &plan.root,
            &key_set(&plan, "o.o_id")
        ));
    }

    #[test]
    fn empty_key_is_never_unique() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a"], 10).with_unique_key(&[0]));
        let m = p.map("id", identity_map(1), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        assert!(!subtree_unique_on(&plan, &t, &plan.root, &AttrSet::new()));
    }
}
