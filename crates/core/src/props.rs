//! Global operator properties.
//!
//! Lifts the local (field-index-level) properties produced by SCA or manual
//! annotation onto the **global record** through the redirection maps α,
//! applying the paper's operator-level rules:
//!
//! * key attributes of Match/CoGroup/Reduce join the read set (the
//!   `f → f'` transformation of Section 4.3.1 "simply means that the
//!   attributes used as keys … are added to the read set");
//! * an implicit-projection UDF (default output constructor) *writes* every
//!   global attribute it does not explicitly preserve — including
//!   attributes outside its local schema that other operators or sources
//!   contribute, because any such attribute flowing through the operator
//!   after a reorder would be dropped;
//! * a UDF whose copy constructor covers all inputs preserves unknown
//!   attributes, so its write set is exactly its modified + added fields.

use std::fmt;
use strato_dataflow::{BoundOp, Plan, PropertyMode};
use strato_record::{AttrSet, GlobalRecord};
use strato_sca::EmitBounds;

/// Global-attribute-level properties of one operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProps {
    /// Global read set `R_f` (Definition 3), including key attributes.
    pub read: AttrSet,
    /// Global write set `W_f` (Definition 2).
    pub write: AttrSet,
    /// Attributes that may influence the emit decision (KGP, Definition 5).
    pub control: AttrSet,
    /// Emit-cardinality bounds per invocation.
    pub emits: EmitBounds,
    /// Attributes the operator newly creates.
    pub added: AttrSet,
}

impl OpProps {
    /// `R_f ∪ W_f` — the attributes the operator touches at all.
    pub fn accessed(&self) -> AttrSet {
        self.read.union(&self.write)
    }

    /// Renders the property sets with attribute names for diagnostics.
    pub fn render(&self, g: &GlobalRecord) -> String {
        format!(
            "R={} W={} C={} emits={}",
            g.render(&self.read),
            g.render(&self.write),
            g.render(&self.control),
            self.emits
        )
    }
}

/// Derives the global properties of a bound operator.
pub fn derive(op: &BoundOp, mode: PropertyMode, all_attrs: &AttrSet) -> OpProps {
    let local = op.props(mode);
    let layout = &op.layout;

    // Read set: α(local reads) ∪ dynamic inputs ∪ keys.
    let mut read = AttrSet::new();
    for &(inp, field) in &local.reads {
        if let Some(a) = layout.inputs.get(inp as usize).and_then(|r| r.get(field)) {
            read.insert(a);
        }
    }
    for &inp in &local.dynamic_read_inputs {
        if let Some(r) = layout.inputs.get(inp as usize) {
            read.union_with(&r.attr_set());
        }
    }
    for keys in &op.key_attrs {
        for &k in keys {
            read.insert(k);
        }
    }

    // Control set: α(control reads) ∪ dynamic control inputs.
    let mut control = AttrSet::new();
    for &(inp, field) in &local.control_reads {
        if let Some(a) = layout.inputs.get(inp as usize).and_then(|r| r.get(field)) {
            control.insert(a);
        }
    }
    for &inp in &local.dynamic_control_inputs {
        if let Some(r) = layout.inputs.get(inp as usize) {
            control.union_with(&r.attr_set());
        }
    }

    // Added attributes.
    let added: AttrSet = op.added_attrs.iter().copied().collect();

    // Write set: α_out(written base fields) ∪ added.
    let mut write = added.clone();
    for &field in &local.written_base {
        if let Some(a) = layout.output.get(field) {
            write.insert(a);
        }
    }
    if local.dynamic_write {
        // Every output field may change.
        write.union_with(&layout.output.attr_set());
    }
    // Foreign attributes: if some input is not implicitly copied on every
    // emit path, any attribute that might flow through that input after a
    // reorder is dropped — conservatively, all attributes outside the
    // operator's schema and its additions.
    let n_inputs = layout.inputs.len();
    let copies_all = (0..n_inputs as u8).all(|i| local.copies_input(i));
    if !copies_all {
        let mut schema = AttrSet::new();
        for r in &layout.inputs {
            schema.union_with(&r.attr_set());
        }
        schema.union_with(&added);
        write.union_with(&all_attrs.difference(&schema));
    }

    OpProps {
        read,
        write,
        control,
        emits: local.emits,
        added,
    }
}

/// Properties of every operator in a plan, under one property mode.
#[derive(Debug, Clone)]
pub struct PropTable {
    props: Vec<OpProps>,
    /// The mode the table was derived under.
    pub mode: PropertyMode,
}

impl PropTable {
    /// Derives properties for all operators of a plan.
    pub fn build(plan: &Plan, mode: PropertyMode) -> PropTable {
        let all = plan.ctx.global.all();
        PropTable {
            props: plan
                .ctx
                .ops
                .iter()
                .map(|op| derive(op, mode, &all))
                .collect(),
            mode,
        }
    }

    /// Properties of operator `op_id`.
    pub fn get(&self, op_id: usize) -> &OpProps {
        &self.props[op_id]
    }

    /// Number of operators covered.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }
}

impl fmt::Display for OpProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R={} W={} C={} emits={}",
            self.read, self.write, self.control, self.emits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};

    fn filter_map(width: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![width]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let neg = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(neg, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn project_map(width: usize, keep: usize) -> Function {
        // new OutputRecord(); or[keep] := getField(ir, keep); emit.
        let mut b = FuncBuilder::new("proj", UdfKind::Map, vec![width]);
        let v = b.get_input(0, keep);
        let or = b.new_rec();
        b.set(or, keep, v);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn filter_props_read_only() {
        let mut p = ProgramBuilder::new();
        let s = p.source(strato_dataflow::SourceDef::new("s", &["a", "b"], 10));
        let m = p.map("f", filter_map(2, 0), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        let props = t.get(0);
        let a = plan.ctx.global.by_name("s.a").unwrap();
        assert_eq!(props.read, AttrSet::singleton(a));
        assert!(props.write.is_empty());
        assert_eq!(props.control, AttrSet::singleton(a));
        assert!(props.emits.at_most_one());
    }

    #[test]
    fn implicit_projection_writes_foreign_attrs() {
        let mut p = ProgramBuilder::new();
        let s = p.source(strato_dataflow::SourceDef::new("s", &["a", "b"], 10));
        let other = p.source(strato_dataflow::SourceDef::new("t", &["c"], 10));
        let m = p.map("proj", project_map(2, 0), CostHints::default(), s);
        let j = p.match_(
            "j",
            &[0],
            &[0],
            join_udf(2, 1),
            CostHints::default(),
            m,
            other,
        );
        let plan = p.finish(j).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        let proj = plan.ctx.ops.iter().position(|o| o.name == "proj").unwrap();
        let props = t.get(proj);
        let b = plan.ctx.global.by_name("s.b").unwrap();
        let c = plan.ctx.global.by_name("t.c").unwrap();
        // Projects away s.b (own schema) AND would drop t.c if it flowed
        // through after a reorder.
        assert!(props.write.contains(b));
        assert!(props.write.contains(c));
        let a = plan.ctx.global.by_name("s.a").unwrap();
        assert!(!props.write.contains(a));
    }

    #[test]
    fn match_keys_join_the_read_set() {
        let mut p = ProgramBuilder::new();
        let l = p.source(strato_dataflow::SourceDef::new("l", &["a", "b"], 10));
        let r = p.source(strato_dataflow::SourceDef::new("r", &["c"], 10));
        let j = p.match_("j", &[1], &[0], join_udf(2, 1), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let t = PropTable::build(&plan, PropertyMode::Sca);
        let props = t.get(0);
        let b = plan.ctx.global.by_name("l.b").unwrap();
        let c = plan.ctx.global.by_name("r.c").unwrap();
        assert!(props.read.contains(b), "left key must be read");
        assert!(props.read.contains(c), "right key must be read");
        // Concat copies both sides: no writes at all.
        assert!(props.write.is_empty());
    }

    #[test]
    fn copy_all_inputs_preserves_foreign_attrs() {
        let mut p = ProgramBuilder::new();
        let s = p.source(strato_dataflow::SourceDef::new("s", &["a"], 10));
        let t2 = p.source(strato_dataflow::SourceDef::new("t", &["c"], 10));
        let m = p.map(
            "id",
            {
                let mut b = FuncBuilder::new("id", UdfKind::Map, vec![1]);
                let or = b.copy_input(0);
                b.emit(or);
                b.ret();
                b.finish().unwrap()
            },
            CostHints::default(),
            s,
        );
        let j = p.match_("j", &[0], &[0], join_udf(1, 1), CostHints::default(), m, t2);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let table = PropTable::build(&plan, PropertyMode::Sca);
        let id = plan.ctx.ops.iter().position(|o| o.name == "id").unwrap();
        assert!(table.get(id).write.is_empty());
    }

    #[test]
    fn accessed_is_union() {
        let p = OpProps {
            read: AttrSet::from_iter_ids([strato_record::AttrId(1)]),
            write: AttrSet::from_iter_ids([strato_record::AttrId(2)]),
            control: AttrSet::new(),
            emits: EmitBounds {
                min: 1,
                max: Some(1),
            },
            added: AttrSet::new(),
        };
        assert_eq!(p.accessed().len(), 2);
    }
}
