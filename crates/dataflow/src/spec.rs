//! Declarative plan descriptions: a pure-data flow specification that
//! compiles to a bound [`Plan`].
//!
//! [`ProgramBuilder`] requires the caller to
//! construct UDFs as three-address code — fine inside the process, but a
//! network client submitting a dataflow cannot ship IR builders. This
//! module is the bridge: a [`FlowSpec`] is a plain tree of sources and
//! operators whose UDFs are chosen from a small declarative catalog
//! ([`MapUdf`], [`ReduceUdf`], [`CoGroupUdf`]), each of which compiles to
//! the same IR shapes the in-process workloads use. The optimizer still
//! sees nothing but black-box three-address code — the catalog is a
//! *convenience for plan transport*, not a semantic side channel: every
//! property used for reordering is rediscovered by SCA from the generated
//! IR.
//!
//! The specification is deliberately serde-free: it is ordinary owned data
//! (`String`s, `Vec`s, [`Value`]s) that any codec — the JSON layer of
//! `strato-server`, a test, a config file parser — can construct by hand.
//!
//! ```
//! use strato_dataflow::spec::{
//!     CmpOp, FlowSpec, FoldOp, MapUdf, NodeSpec, OpSpec, ReduceUdf, SourceSpec,
//! };
//!
//! // source "s"(k, v) → filter v >= 0 → per-k in-place Σv
//! let flow = FlowSpec::new(NodeSpec::op(
//!     OpSpec::reduce("sum", &[0], ReduceUdf::fold_inplace(FoldOp::Sum, 1)),
//!     vec![NodeSpec::op(
//!         OpSpec::map("pos", MapUdf::filter_cmp(1, CmpOp::Ge, 0i64)),
//!         vec![NodeSpec::source(SourceSpec::new("s", &["k", "v"], 1_000))],
//!     )],
//! ));
//! let plan = flow.build().expect("valid spec");
//! assert_eq!(plan.ctx.ops.len(), 2);
//! ```

use crate::operator::CostHints;
use crate::plan::Plan;
use crate::program::{NodeHandle, ProgramBuilder, ProgramError, SourceDef};
use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};
use strato_record::Value;

/// Errors detected while compiling a [`FlowSpec`] into a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The underlying program failed structural validation (width or key
    /// mismatches, arity errors).
    Program(ProgramError),
    /// The spec itself is malformed (duplicate source name, field index
    /// outside the schema, empty key, …). The string names the offender.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Program(e) => write!(f, "invalid program: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid flow spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ProgramError> for SpecError {
    fn from(e: ProgramError) -> Self {
        SpecError::Program(e)
    }
}

/// A data source in a flow specification. Mirrors
/// [`SourceDef`] as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Source name; input data sets are keyed by it at execution time.
    pub name: String,
    /// Field names in schema order.
    pub fields: Vec<String>,
    /// Estimated row count (cost model input).
    pub est_rows: u64,
    /// Estimated bytes per row; `None` derives `16 × arity`.
    pub bytes_per_row: Option<u64>,
    /// Field-index sets that are unique keys of this source.
    pub unique_keys: Vec<Vec<usize>>,
}

impl SourceSpec {
    /// A source with default byte estimates and no unique keys.
    pub fn new(name: impl Into<String>, fields: &[&str], est_rows: u64) -> Self {
        SourceSpec {
            name: name.into(),
            fields: fields.iter().map(|s| s.to_string()).collect(),
            est_rows,
            bytes_per_row: None,
            unique_keys: Vec::new(),
        }
    }

    /// Declares a unique key (set of field indices).
    pub fn with_unique_key(mut self, key: &[usize]) -> Self {
        self.unique_keys.push(key.to_vec());
        self
    }
}

/// Comparison operators available to [`MapUdf::Filter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    fn bin(self) -> BinOp {
        match self {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::Ne => BinOp::Ne,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::Le => BinOp::Le,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::Ge => BinOp::Ge,
        }
    }

    /// The spec keyword (`"eq"`, `"ne"`, …), as codecs accept it.
    pub fn keyword(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parses a spec keyword.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// Fold operators available to [`ReduceUdf::Fold`]. All of them are
/// associative and commutative ([`BinOp::is_assoc_comm`]), so the in-place
/// variants are provably decomposable and unlock the combiner path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOp {
    /// `Σ` (integer wrap-around).
    Sum,
    /// `Π` (integer wrap-around).
    Product,
    /// Minimum under the total value order.
    Min,
    /// Maximum under the total value order.
    Max,
}

impl FoldOp {
    fn bin(self) -> BinOp {
        match self {
            FoldOp::Sum => BinOp::Add,
            FoldOp::Product => BinOp::Mul,
            FoldOp::Min => BinOp::Min,
            FoldOp::Max => BinOp::Max,
        }
    }

    /// Neutral (or safely absorbing) initial accumulator value.
    fn init(self) -> i64 {
        match self {
            FoldOp::Sum => 0,
            FoldOp::Product => 1,
            FoldOp::Min => i64::MAX,
            FoldOp::Max => i64::MIN,
        }
    }

    /// The spec keyword (`"sum"`, `"product"`, `"min"`, `"max"`).
    pub fn keyword(self) -> &'static str {
        match self {
            FoldOp::Sum => "sum",
            FoldOp::Product => "product",
            FoldOp::Min => "min",
            FoldOp::Max => "max",
        }
    }

    /// Parses a spec keyword.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sum" => FoldOp::Sum,
            "product" => FoldOp::Product,
            "min" => FoldOp::Min,
            "max" => FoldOp::Max,
            _ => return None,
        })
    }
}

/// Map UDF catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum MapUdf {
    /// Emit every input record unchanged.
    Identity,
    /// Emit the record iff `field ⟨cmp⟩ value`.
    Filter {
        /// Local field index tested.
        field: usize,
        /// Comparison operator.
        cmp: CmpOp,
        /// Constant compared against.
        value: Value,
    },
    /// Emit the record iff `lo ≤ field ≤ hi` (integer range filter).
    FilterRange {
        /// Local field index tested.
        field: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Burn `units` of deterministic CPU work seeded by `field`, then emit
    /// the record with the checksum appended as a new field. Models an
    /// expensive opaque component (the paper's NLP/ML extractors); useful
    /// for exercising cost-based reordering and admission control from the
    /// network API.
    Burn {
        /// Local field index seeding the busy work.
        field: usize,
        /// CPU units to burn per record.
        units: i64,
    },
}

impl MapUdf {
    /// Convenience constructor for [`MapUdf::Filter`].
    pub fn filter_cmp(field: usize, cmp: CmpOp, value: impl Into<Value>) -> Self {
        MapUdf::Filter {
            field,
            cmp,
            value: value.into(),
        }
    }

    /// Output width for input width `w`.
    fn out_width(&self, w: usize) -> usize {
        match self {
            MapUdf::Identity | MapUdf::Filter { .. } | MapUdf::FilterRange { .. } => w,
            MapUdf::Burn { .. } => w + 1,
        }
    }

    fn compile(&self, name: &str, w: usize) -> Result<Function, SpecError> {
        let check = |field: usize| {
            if field >= w {
                Err(SpecError::Invalid(format!(
                    "map {name}: field {field} outside input width {w}"
                )))
            } else {
                Ok(())
            }
        };
        let mut b = FuncBuilder::new(name, UdfKind::Map, vec![w]);
        match self {
            MapUdf::Identity => {
                let or = b.copy_input(0);
                b.emit(or);
            }
            MapUdf::Filter { field, cmp, value } => {
                check(*field)?;
                let v = b.get_input(0, *field);
                let c = b.konst(value.clone());
                let keep = b.bin(cmp.bin(), v, c);
                let end = b.new_label();
                b.branch_not(keep, end);
                let or = b.copy_input(0);
                b.emit(or);
                b.place(end);
            }
            MapUdf::FilterRange { field, lo, hi } => {
                check(*field)?;
                let v = b.get_input(0, *field);
                let lo_c = b.konst(*lo);
                let hi_c = b.konst(*hi);
                let ge = b.bin(BinOp::Ge, v, lo_c);
                let le = b.bin(BinOp::Le, v, hi_c);
                let keep = b.bin(BinOp::And, ge, le);
                let end = b.new_label();
                b.branch_not(keep, end);
                let or = b.copy_input(0);
                b.emit(or);
                b.place(end);
            }
            MapUdf::Burn { field, units } => {
                check(*field)?;
                let seed = b.get_input(0, *field);
                let cost = b.konst((*units).max(0));
                let checksum = b.call(strato_ir::Intrinsic::Burn, vec![cost, seed]);
                let or = b.copy_input(0);
                b.set(or, w, checksum);
                b.emit(or);
            }
        }
        b.ret();
        b.finish()
            .map_err(|e| SpecError::Invalid(format!("map {name}: {e:?}")))
    }
}

/// Reduce UDF catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceUdf {
    /// Fold `⊕ field` over the group. With `append = false` the total
    /// overwrites the field it was read from — the canonical *combinable*
    /// shape SCA proves decomposable, unlocking pre-shuffle combiners and
    /// streaming aggregation. With `append = true` the total lands in a new
    /// field past the input schema (not combinable: re-reducing partials
    /// would re-fold the appended totals).
    Fold {
        /// The fold operator.
        op: FoldOp,
        /// Local field index folded over.
        field: usize,
        /// Append the total as a new field instead of folding in place.
        append: bool,
    },
    /// Append the group's record count as a new field.
    Count,
}

impl ReduceUdf {
    /// In-place (combinable) fold.
    pub fn fold_inplace(op: FoldOp, field: usize) -> Self {
        ReduceUdf::Fold {
            op,
            field,
            append: false,
        }
    }

    fn out_width(&self, w: usize) -> usize {
        match self {
            ReduceUdf::Fold { append: false, .. } => w,
            ReduceUdf::Fold { append: true, .. } | ReduceUdf::Count => w + 1,
        }
    }

    fn compile(&self, name: &str, w: usize) -> Result<Function, SpecError> {
        let mut b = FuncBuilder::new(name, UdfKind::Group, vec![w]);
        match self {
            ReduceUdf::Fold { op, field, append } => {
                if *field >= w {
                    return Err(SpecError::Invalid(format!(
                        "reduce {name}: field {field} outside input width {w}"
                    )));
                }
                let acc = b.konst(op.init());
                let it = b.iter_open(0);
                let done = b.new_label();
                let head = b.new_label();
                b.place(head);
                let r = b.iter_next(it, done);
                let v = b.get(r, *field);
                b.bin_into(acc, op.bin(), acc, v);
                b.jump(head);
                b.place(done);
                let it2 = b.iter_open(0);
                let nil = b.new_label();
                let first = b.iter_next(it2, nil);
                let or = b.copy(first);
                b.set(or, if *append { w } else { *field }, acc);
                b.emit(or);
                b.place(nil);
            }
            ReduceUdf::Count => {
                let n = b.group_count(0);
                let it = b.iter_open(0);
                let nil = b.new_label();
                let first = b.iter_next(it, nil);
                let or = b.copy(first);
                b.set(or, w, n);
                b.emit(or);
                b.place(nil);
            }
        }
        b.ret();
        b.finish()
            .map_err(|e| SpecError::Invalid(format!("reduce {name}: {e:?}")))
    }
}

/// CoGroup UDF catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoGroupUdf {
    /// Emit one record per key carrying `|left group| − |right group|` in a
    /// new field past the concatenated input schemas.
    CountDiff,
}

impl CoGroupUdf {
    fn out_width(&self, wl: usize, wr: usize) -> usize {
        match self {
            CoGroupUdf::CountDiff => wl + wr + 1,
        }
    }

    fn compile(&self, name: &str, wl: usize, wr: usize) -> Result<Function, SpecError> {
        let mut b = FuncBuilder::new(name, UdfKind::CoGroup, vec![wl, wr]);
        match self {
            CoGroupUdf::CountDiff => {
                let nl = b.group_count(0);
                let nr = b.group_count(1);
                let d = b.bin(BinOp::Sub, nl, nr);
                let or = b.new_rec();
                b.set(or, wl + wr, d);
                b.emit(or);
            }
        }
        b.ret();
        b.finish()
            .map_err(|e| SpecError::Invalid(format!("cogroup {name}: {e:?}")))
    }
}

/// The second-order function of an [`OpSpec`], with its keys and UDF.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKindSpec {
    /// Record-at-a-time Map.
    Map(MapUdf),
    /// Key-at-a-time Reduce grouping on `key` (local field indices).
    Reduce {
        /// Grouping key (local field indices of the input).
        key: Vec<usize>,
        /// The group UDF.
        udf: ReduceUdf,
    },
    /// Equi-join; the UDF concatenates the matched pair.
    Match {
        /// Join key on the left input.
        key_left: Vec<usize>,
        /// Join key on the right input.
        key_right: Vec<usize>,
    },
    /// Cartesian product; the UDF concatenates the pair.
    Cross,
    /// CoGroup on a key per side.
    CoGroup {
        /// Grouping key on the left input.
        key_left: Vec<usize>,
        /// Grouping key on the right input.
        key_right: Vec<usize>,
        /// The co-group UDF.
        udf: CoGroupUdf,
    },
}

/// Cost hints as plain data (all optional; defaults mirror
/// [`CostHints::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HintSpec {
    /// Average records emitted per UDF call.
    pub selectivity: Option<f64>,
    /// CPU cost units per UDF call.
    pub cpu: Option<f64>,
    /// Distinct values of the key set.
    pub distinct_keys: Option<u64>,
    /// Average bytes per output record.
    pub record_bytes: Option<u64>,
}

impl HintSpec {
    fn to_hints(self) -> CostHints {
        let mut h = CostHints::default();
        if let Some(s) = self.selectivity {
            h.avg_emits_per_call = s;
        }
        if let Some(c) = self.cpu {
            h.cpu_per_call = c;
        }
        h.distinct_keys = self.distinct_keys;
        h.avg_record_bytes = self.record_bytes;
        h
    }
}

/// An operator node of a flow specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    /// Diagnostic name; also the per-operator metrics label.
    pub name: String,
    /// PACT + keys + UDF.
    pub kind: OpKindSpec,
    /// Cost hints.
    pub hints: HintSpec,
}

impl OpSpec {
    /// A Map operator spec.
    pub fn map(name: impl Into<String>, udf: MapUdf) -> Self {
        OpSpec {
            name: name.into(),
            kind: OpKindSpec::Map(udf),
            hints: HintSpec::default(),
        }
    }

    /// A Reduce operator spec.
    pub fn reduce(name: impl Into<String>, key: &[usize], udf: ReduceUdf) -> Self {
        OpSpec {
            name: name.into(),
            kind: OpKindSpec::Reduce {
                key: key.to_vec(),
                udf,
            },
            hints: HintSpec::default(),
        }
    }

    /// An equi-join (Match) operator spec.
    pub fn match_(name: impl Into<String>, key_left: &[usize], key_right: &[usize]) -> Self {
        OpSpec {
            name: name.into(),
            kind: OpKindSpec::Match {
                key_left: key_left.to_vec(),
                key_right: key_right.to_vec(),
            },
            hints: HintSpec::default(),
        }
    }

    /// Attaches cost hints.
    pub fn with_hints(mut self, hints: HintSpec) -> Self {
        self.hints = hints;
        self
    }
}

/// One node of the flow tree: a source or an operator over child nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSpec {
    /// A leaf source.
    Source(SourceSpec),
    /// An operator applied to child flows.
    Op {
        /// The operator.
        op: OpSpec,
        /// Child nodes (1 for Map/Reduce, 2 for Match/Cross/CoGroup).
        inputs: Vec<NodeSpec>,
    },
}

impl NodeSpec {
    /// A source leaf.
    pub fn source(s: SourceSpec) -> Self {
        NodeSpec::Source(s)
    }

    /// An operator node.
    pub fn op(op: OpSpec, inputs: Vec<NodeSpec>) -> Self {
        NodeSpec::Op { op, inputs }
    }
}

/// A complete flow specification: the root node of the operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Root of the flow (the sink's input).
    pub root: NodeSpec,
}

impl FlowSpec {
    /// Wraps a root node.
    pub fn new(root: NodeSpec) -> Self {
        FlowSpec { root }
    }

    /// Compiles the specification into a bound [`Plan`]: instantiates every
    /// catalog UDF as three-address code at the node's actual input width,
    /// assembles the program through [`ProgramBuilder`] and binds it
    /// (global record, redirection maps, SCA).
    pub fn build(&self) -> Result<Plan, SpecError> {
        let mut names = std::collections::HashSet::new();
        collect_source_names(&self.root, &mut names)?;
        let mut b = ProgramBuilder::new();
        let (root, _w) = build_node(&mut b, &self.root)?;
        Ok(b.finish(root)?.bind()?)
    }
}

fn collect_source_names<'a>(
    node: &'a NodeSpec,
    seen: &mut std::collections::HashSet<&'a str>,
) -> Result<(), SpecError> {
    match node {
        NodeSpec::Source(s) => {
            if s.fields.is_empty() {
                return Err(SpecError::Invalid(format!("source {}: no fields", s.name)));
            }
            if !seen.insert(&s.name) {
                return Err(SpecError::Invalid(format!(
                    "duplicate source name {:?} (inputs are keyed by name)",
                    s.name
                )));
            }
        }
        NodeSpec::Op { inputs, .. } => {
            for c in inputs {
                collect_source_names(c, seen)?;
            }
        }
    }
    Ok(())
}

/// Builds one node, returning its handle and output width.
fn build_node(b: &mut ProgramBuilder, node: &NodeSpec) -> Result<(NodeHandle, usize), SpecError> {
    match node {
        NodeSpec::Source(s) => {
            let mut def = SourceDef::new(
                s.name.clone(),
                &s.fields.iter().map(String::as_str).collect::<Vec<_>>(),
                s.est_rows,
            );
            if let Some(bpr) = s.bytes_per_row {
                def = def.with_bytes_per_row(bpr);
            }
            for k in &s.unique_keys {
                def = def.with_unique_key(k);
            }
            let w = s.fields.len();
            Ok((b.source(def), w))
        }
        NodeSpec::Op { op, inputs } => {
            let arity = match &op.kind {
                OpKindSpec::Map(_) | OpKindSpec::Reduce { .. } => 1,
                OpKindSpec::Match { .. } | OpKindSpec::Cross | OpKindSpec::CoGroup { .. } => 2,
            };
            if inputs.len() != arity {
                return Err(SpecError::Invalid(format!(
                    "operator {}: expected {arity} input(s), got {}",
                    op.name,
                    inputs.len()
                )));
            }
            let mut kids = Vec::new();
            for c in inputs {
                kids.push(build_node(b, c)?);
            }
            let hints = op.hints.to_hints();
            match &op.kind {
                OpKindSpec::Map(udf) => {
                    let (child, w) = kids.pop().expect("arity checked");
                    let f = udf.compile(&op.name, w)?;
                    let out = udf.out_width(w);
                    Ok((b.map(&op.name, f, hints, child), out))
                }
                OpKindSpec::Reduce { key, udf } => {
                    let (child, w) = kids.pop().expect("arity checked");
                    check_key(&op.name, key, w)?;
                    let f = udf.compile(&op.name, w)?;
                    let out = udf.out_width(w);
                    Ok((b.reduce(&op.name, key, f, hints, child), out))
                }
                OpKindSpec::Match {
                    key_left,
                    key_right,
                } => {
                    let (right, wr) = kids.pop().expect("arity checked");
                    let (left, wl) = kids.pop().expect("arity checked");
                    check_key(&op.name, key_left, wl)?;
                    check_key(&op.name, key_right, wr)?;
                    if key_left.len() != key_right.len() {
                        return Err(SpecError::Invalid(format!(
                            "match {}: key arity mismatch ({} vs {})",
                            op.name,
                            key_left.len(),
                            key_right.len()
                        )));
                    }
                    let f = join_concat(&op.name, wl, wr)?;
                    Ok((
                        b.match_(&op.name, key_left, key_right, f, hints, left, right),
                        wl + wr,
                    ))
                }
                OpKindSpec::Cross => {
                    let (right, wr) = kids.pop().expect("arity checked");
                    let (left, wl) = kids.pop().expect("arity checked");
                    let f = join_concat(&op.name, wl, wr)?;
                    Ok((b.cross(&op.name, f, hints, left, right), wl + wr))
                }
                OpKindSpec::CoGroup {
                    key_left,
                    key_right,
                    udf,
                } => {
                    let (right, wr) = kids.pop().expect("arity checked");
                    let (left, wl) = kids.pop().expect("arity checked");
                    check_key(&op.name, key_left, wl)?;
                    check_key(&op.name, key_right, wr)?;
                    let f = udf.compile(&op.name, wl, wr)?;
                    let out = udf.out_width(wl, wr);
                    Ok((
                        b.cogroup(&op.name, key_left, key_right, f, hints, left, right),
                        out,
                    ))
                }
            }
        }
    }
}

fn check_key(op: &str, key: &[usize], w: usize) -> Result<(), SpecError> {
    if key.is_empty() {
        return Err(SpecError::Invalid(format!("operator {op}: empty key")));
    }
    if let Some(&f) = key.iter().find(|&&f| f >= w) {
        return Err(SpecError::Invalid(format!(
            "operator {op}: key field {f} outside input width {w}"
        )));
    }
    Ok(())
}

/// Pair UDF concatenating both inputs (the standard equi-join body).
fn join_concat(name: &str, wl: usize, wr: usize) -> Result<Function, SpecError> {
    let mut b = FuncBuilder::new(name, UdfKind::Pair, vec![wl, wr]);
    let or = b.concat_inputs();
    b.emit(or);
    b.ret();
    b.finish()
        .map_err(|e| SpecError::Invalid(format!("join {name}: {e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PropertyMode;

    fn agg_flow() -> FlowSpec {
        FlowSpec::new(NodeSpec::op(
            OpSpec::reduce("sum", &[0], ReduceUdf::fold_inplace(FoldOp::Sum, 1)),
            vec![NodeSpec::op(
                OpSpec::map("pos", MapUdf::filter_cmp(1, CmpOp::Ge, 0i64)).with_hints(HintSpec {
                    selectivity: Some(0.9),
                    ..HintSpec::default()
                }),
                vec![NodeSpec::source(SourceSpec::new("s", &["k", "v"], 1_000))],
            )],
        ))
    }

    #[test]
    fn spec_builds_bound_plan() {
        let plan = agg_flow().build().unwrap();
        assert_eq!(plan.ctx.ops.len(), 2);
        assert_eq!(plan.ctx.sources.len(), 1);
        let sum = plan.ctx.ops.iter().find(|o| o.name == "sum").unwrap();
        // The in-place fold must be proven combinable by SCA.
        assert!(sum.combine.is_some(), "in-place sum is decomposable");
        let _ = plan.ctx.ops[0].props(PropertyMode::Sca);
    }

    #[test]
    fn appended_fold_and_count_widths() {
        let flow = FlowSpec::new(NodeSpec::op(
            OpSpec::reduce(
                "cnt",
                &[0],
                ReduceUdf::Fold {
                    op: FoldOp::Max,
                    field: 1,
                    append: true,
                },
            ),
            vec![NodeSpec::source(SourceSpec::new("s", &["k", "v"], 10))],
        ));
        let plan = flow.build().unwrap();
        let op = &plan.ctx.ops[0];
        assert_eq!(op.udf.output_width(), 3, "appended fold widens by one");
        assert!(op.combine.is_none(), "appended fold is not decomposable");

        let flow = FlowSpec::new(NodeSpec::op(
            OpSpec::reduce("c", &[0], ReduceUdf::Count),
            vec![NodeSpec::source(SourceSpec::new("s", &["k"], 10))],
        ));
        assert_eq!(flow.build().unwrap().ctx.ops[0].udf.output_width(), 2);
    }

    #[test]
    fn binary_specs_build() {
        let join = FlowSpec::new(NodeSpec::op(
            OpSpec::match_("j", &[0], &[0]),
            vec![
                NodeSpec::source(SourceSpec::new("l", &["k", "v"], 100)),
                NodeSpec::source(SourceSpec::new("r", &["k2"], 10).with_unique_key(&[0])),
            ],
        ));
        let plan = join.build().unwrap();
        assert_eq!(plan.ctx.ops[0].udf.output_width(), 3);

        let cg = FlowSpec::new(NodeSpec::op(
            OpSpec {
                name: "cg".into(),
                kind: OpKindSpec::CoGroup {
                    key_left: vec![0],
                    key_right: vec![0],
                    udf: CoGroupUdf::CountDiff,
                },
                hints: HintSpec::default(),
            },
            vec![
                NodeSpec::source(SourceSpec::new("l", &["k"], 10)),
                NodeSpec::source(SourceSpec::new("r", &["k2"], 10)),
            ],
        ));
        assert_eq!(cg.build().unwrap().ctx.ops[0].udf.output_width(), 3);

        let cross = FlowSpec::new(NodeSpec::op(
            OpSpec {
                name: "x".into(),
                kind: OpKindSpec::Cross,
                hints: HintSpec::default(),
            },
            vec![
                NodeSpec::source(SourceSpec::new("a", &["p"], 4)),
                NodeSpec::source(SourceSpec::new("b", &["q"], 4)),
            ],
        ));
        assert_eq!(cross.build().unwrap().ctx.ops[0].udf.output_width(), 2);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        // Duplicate source name.
        let dup = FlowSpec::new(NodeSpec::op(
            OpSpec::match_("j", &[0], &[0]),
            vec![
                NodeSpec::source(SourceSpec::new("s", &["k"], 1)),
                NodeSpec::source(SourceSpec::new("s", &["k"], 1)),
            ],
        ));
        assert!(matches!(dup.build(), Err(SpecError::Invalid(_))));

        // Key outside the schema.
        let oob = FlowSpec::new(NodeSpec::op(
            OpSpec::reduce("r", &[3], ReduceUdf::Count),
            vec![NodeSpec::source(SourceSpec::new("s", &["k"], 1))],
        ));
        assert!(matches!(oob.build(), Err(SpecError::Invalid(_))));

        // Filter field outside the schema.
        let oob = FlowSpec::new(NodeSpec::op(
            OpSpec::map("m", MapUdf::filter_cmp(9, CmpOp::Eq, 1i64)),
            vec![NodeSpec::source(SourceSpec::new("s", &["k"], 1))],
        ));
        assert!(matches!(oob.build(), Err(SpecError::Invalid(_))));

        // Wrong arity.
        let arity = FlowSpec::new(NodeSpec::op(
            OpSpec::map("m", MapUdf::Identity),
            vec![
                NodeSpec::source(SourceSpec::new("a", &["k"], 1)),
                NodeSpec::source(SourceSpec::new("b", &["k"], 1)),
            ],
        ));
        assert!(matches!(arity.build(), Err(SpecError::Invalid(_))));

        // Mismatched join key arity.
        let keys = FlowSpec::new(NodeSpec::op(
            OpSpec::match_("j", &[0], &[0, 0]),
            vec![
                NodeSpec::source(SourceSpec::new("a", &["k"], 1)),
                NodeSpec::source(SourceSpec::new("b", &["k"], 1)),
            ],
        ));
        assert!(matches!(keys.build(), Err(SpecError::Invalid(_))));

        // Empty key.
        let empty = FlowSpec::new(NodeSpec::op(
            OpSpec::reduce("r", &[], ReduceUdf::Count),
            vec![NodeSpec::source(SourceSpec::new("s", &["k"], 1))],
        ));
        assert!(matches!(empty.build(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn keyword_round_trips() {
        for c in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(CmpOp::parse(c.keyword()), Some(c));
        }
        for f in [FoldOp::Sum, FoldOp::Product, FoldOp::Min, FoldOp::Max] {
            assert_eq!(FoldOp::parse(f.keyword()), Some(f));
        }
        assert_eq!(CmpOp::parse("nope"), None);
        assert_eq!(FoldOp::parse("nope"), None);
    }
}
