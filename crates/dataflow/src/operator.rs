//! Operators: PACT + UDF + annotations + cost hints.

use crate::pact::Pact;
use std::sync::Arc;
use strato_ir::Function;
use strato_sca::LocalProps;

/// Cost-model hints, mirroring Section 7.1 of the paper: "the optimizer
/// relies on hints such as 'Average Number of Records Emitted per UDF
/// Call', 'CPU Cost per UDF Call', and 'Number of Distinct Values per
/// Key-Set'. These can be provided by the user, a language compiler, or
/// obtained by runtime profiling."
#[derive(Debug, Clone, PartialEq)]
pub struct CostHints {
    /// Average number of records emitted per UDF call (selectivity).
    pub avg_emits_per_call: f64,
    /// CPU cost units per UDF call.
    pub cpu_per_call: f64,
    /// Number of distinct values of the key set (Reduce/CoGroup inputs);
    /// `None` = unknown, the cost model falls back to a default ratio.
    pub distinct_keys: Option<u64>,
    /// Average bytes per output record; `None` = derive from input width.
    pub avg_record_bytes: Option<u64>,
}

impl Default for CostHints {
    fn default() -> Self {
        CostHints {
            avg_emits_per_call: 1.0,
            cpu_per_call: 1.0,
            distinct_keys: None,
            avg_record_bytes: None,
        }
    }
}

impl CostHints {
    /// Hint with a given selectivity (records out per call).
    pub fn selectivity(sel: f64) -> Self {
        CostHints {
            avg_emits_per_call: sel,
            ..Default::default()
        }
    }

    /// Sets the CPU cost per call.
    pub fn with_cpu(mut self, cpu: f64) -> Self {
        self.cpu_per_call = cpu;
        self
    }

    /// Sets the distinct-keys hint.
    pub fn with_distinct_keys(mut self, k: u64) -> Self {
        self.distinct_keys = Some(k);
        self
    }

    /// Sets the average output record width in bytes.
    pub fn with_record_bytes(mut self, b: u64) -> Self {
        self.avg_record_bytes = Some(b);
        self
    }
}

/// A data flow operator: a second-order function with an attached
/// first-order black-box UDF.
///
/// `manual_props` optionally carries hand-written property annotations — the
/// alternative property source the paper compares against SCA in Table 1.
#[derive(Debug, Clone)]
pub struct Operator {
    /// Diagnostic name, e.g. `"filter_shipdate"`.
    pub name: String,
    /// The second-order function and its key fields.
    pub pact: Pact,
    /// The first-order UDF (three-address code).
    pub udf: Arc<Function>,
    /// Optional manual property annotations (local field indices).
    pub manual_props: Option<LocalProps>,
    /// Cost-model hints.
    pub hints: CostHints,
}

impl Operator {
    /// Creates an operator; panics if the UDF kind does not fit the PACT
    /// (programming error at workload-construction time).
    pub fn new(name: impl Into<String>, pact: Pact, udf: Function, hints: CostHints) -> Self {
        assert_eq!(
            udf.kind(),
            pact.udf_kind(),
            "UDF kind must match the PACT's invocation shape"
        );
        Operator {
            name: name.into(),
            pact,
            udf: Arc::new(udf),
            manual_props: None,
            hints,
        }
    }

    /// Attaches manual property annotations.
    pub fn with_manual_props(mut self, props: LocalProps) -> Self {
        self.manual_props = Some(props);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::{FuncBuilder, UdfKind};

    fn identity_map(width: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![width]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn hints_builders() {
        let h = CostHints::selectivity(0.25)
            .with_cpu(10.0)
            .with_distinct_keys(100)
            .with_record_bytes(64);
        assert_eq!(h.avg_emits_per_call, 0.25);
        assert_eq!(h.cpu_per_call, 10.0);
        assert_eq!(h.distinct_keys, Some(100));
        assert_eq!(h.avg_record_bytes, Some(64));
    }

    #[test]
    fn operator_construction() {
        let op = Operator::new("m", Pact::Map, identity_map(2), CostHints::default());
        assert_eq!(op.name, "m");
        assert!(op.manual_props.is_none());
    }

    #[test]
    #[should_panic(expected = "UDF kind must match")]
    fn wrong_udf_kind_panics() {
        let _ = Operator::new(
            "bad",
            Pact::Reduce { key: vec![0] },
            identity_map(2),
            CostHints::default(),
        );
    }
}
