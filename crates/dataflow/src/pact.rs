//! The five second-order functions (PACTs) of Section 2.3.

use strato_ir::UdfKind;

/// A second-order function: how the input data set(s) are partitioned into
/// groups before the first-order UDF is applied (Figure 1 of the paper).
///
/// Key fields are **local field indices** into the respective input's
/// schema; binding maps them to global attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pact {
    /// Every input record forms its own group.
    Map,
    /// One group per distinct value of the key attributes.
    Reduce {
        /// Key fields of the single input.
        key: Vec<usize>,
    },
    /// One group per *pair* of records from the two inputs (Cartesian
    /// product).
    Cross,
    /// One group per pair of records agreeing on the key (equi-join).
    Match {
        /// Key fields of the left input.
        key_left: Vec<usize>,
        /// Key fields of the right input.
        key_right: Vec<usize>,
    },
    /// One group per key value over the combined active domains; each group
    /// holds the matching records of both inputs.
    CoGroup {
        /// Key fields of the left input.
        key_left: Vec<usize>,
        /// Key fields of the right input.
        key_right: Vec<usize>,
    },
}

impl Pact {
    /// Number of inputs this PACT consumes.
    pub fn n_inputs(&self) -> usize {
        match self {
            Pact::Map | Pact::Reduce { .. } => 1,
            Pact::Cross | Pact::Match { .. } | Pact::CoGroup { .. } => 2,
        }
    }

    /// The UDF invocation shape this PACT requires.
    pub fn udf_kind(&self) -> UdfKind {
        match self {
            Pact::Map => UdfKind::Map,
            Pact::Reduce { .. } => UdfKind::Group,
            Pact::Cross | Pact::Match { .. } => UdfKind::Pair,
            Pact::CoGroup { .. } => UdfKind::CoGroup,
        }
    }

    /// Record-at-a-time (UDF sees single records) vs. key-at-a-time (UDF
    /// sees record lists) — Section 2.3.
    pub fn is_rat(&self) -> bool {
        self.udf_kind().is_rat()
    }

    /// `true` for key-at-a-time PACTs (Reduce, CoGroup).
    pub fn is_kat(&self) -> bool {
        !self.is_rat()
    }

    /// Key fields of input `i`, if this PACT has keys.
    pub fn key_of_input(&self, i: usize) -> Option<&[usize]> {
        match (self, i) {
            (Pact::Reduce { key }, 0) => Some(key),
            (Pact::Match { key_left, .. }, 0) | (Pact::CoGroup { key_left, .. }, 0) => {
                Some(key_left)
            }
            (Pact::Match { key_right, .. }, 1) | (Pact::CoGroup { key_right, .. }, 1) => {
                Some(key_right)
            }
            _ => None,
        }
    }

    /// A short name for diagnostics ("Map", "Reduce", …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Pact::Map => "Map",
            Pact::Reduce { .. } => "Reduce",
            Pact::Cross => "Cross",
            Pact::Match { .. } => "Match",
            Pact::CoGroup { .. } => "CoGroup",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Pact::Map.n_inputs(), 1);
        assert_eq!(Pact::Reduce { key: vec![0] }.n_inputs(), 1);
        assert_eq!(Pact::Cross.n_inputs(), 2);
        assert_eq!(
            Pact::Match {
                key_left: vec![0],
                key_right: vec![1]
            }
            .n_inputs(),
            2
        );
    }

    #[test]
    fn udf_kinds() {
        assert_eq!(Pact::Map.udf_kind(), UdfKind::Map);
        assert_eq!(Pact::Reduce { key: vec![0] }.udf_kind(), UdfKind::Group);
        assert_eq!(Pact::Cross.udf_kind(), UdfKind::Pair);
        assert_eq!(
            Pact::CoGroup {
                key_left: vec![0],
                key_right: vec![0]
            }
            .udf_kind(),
            UdfKind::CoGroup
        );
    }

    #[test]
    fn rat_vs_kat() {
        assert!(Pact::Map.is_rat());
        assert!(Pact::Cross.is_rat());
        assert!(Pact::Reduce { key: vec![] }.is_kat());
        assert!(Pact::CoGroup {
            key_left: vec![],
            key_right: vec![]
        }
        .is_kat());
    }

    #[test]
    fn keys_per_input() {
        let m = Pact::Match {
            key_left: vec![2],
            key_right: vec![0],
        };
        assert_eq!(m.key_of_input(0), Some(&[2usize][..]));
        assert_eq!(m.key_of_input(1), Some(&[0usize][..]));
        assert_eq!(Pact::Map.key_of_input(0), None);
        assert_eq!(Pact::Cross.key_of_input(1), None);
    }

    #[test]
    fn names() {
        assert_eq!(Pact::Map.kind_name(), "Map");
        assert_eq!(Pact::Cross.kind_name(), "Cross");
    }
}
