//! Bound plans: global record, redirection maps, and the reorderable tree.
//!
//! Binding walks the program bottom-up and realizes Definition 1 of the
//! paper: every base attribute (from sources) and intermediate attribute
//! (fields a UDF adds beyond its input schemas) receives a unique global
//! identity, and every operator gets redirection maps α translating its
//! local field accesses to global positions. Because execution operates on
//! global-layout tuples, a [`Plan`]'s operator tree can be rearranged freely
//! (by the optimizer) without touching UDF code — the paper's
//! "non-intrusive" requirement.

use crate::operator::{CostHints, Operator};
use crate::pact::Pact;
use crate::program::{BNode, Program, ProgramError, SourceDef};
use std::fmt;
use std::sync::Arc;
use strato_ir::interp::Layout;
use strato_ir::{BinOp, Function};
use strato_record::{AttrId, AttrSet, GlobalRecord, Redirection};
use strato_sca::{CombineSummary, LocalProps};

/// Which property source the optimizer consults — the two columns of
/// Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyMode {
    /// Properties derived by static code analysis of the UDF.
    Sca,
    /// Manually attached annotations (falling back to SCA where absent).
    Manual,
}

/// A bound source: its global attributes and uniqueness constraints.
#[derive(Debug, Clone)]
pub struct BoundSource {
    /// Source name.
    pub name: String,
    /// Global attribute per schema field.
    pub attrs: Vec<AttrId>,
    /// Unique keys, as global attribute sets.
    pub unique: Vec<AttrSet>,
    /// Estimated row count.
    pub est_rows: u64,
    /// Estimated bytes per row.
    pub est_bytes_per_row: u64,
}

/// A bound operator: the operator plus its α maps, global key attributes
/// and analysis results. Immutable once bound; shared by every reordered
/// alternative of the plan.
#[derive(Debug, Clone)]
pub struct BoundOp {
    /// Operator name.
    pub name: String,
    /// The PACT with local key indices.
    pub pact: Pact,
    /// The UDF.
    pub udf: Arc<Function>,
    /// Redirection maps for the interpreter.
    pub layout: Layout,
    /// Global key attributes per input (`[keys]` for Reduce;
    /// `[left, right]` for Match/CoGroup; empty otherwise).
    pub key_attrs: Vec<Vec<AttrId>>,
    /// Properties derived by static code analysis.
    pub sca_props: LocalProps,
    /// SCA's structural decomposability proof, when the UDF is an in-place
    /// algebraic fold (Reduce operators only; see `strato_sca::combine`).
    /// Having a summary is necessary but not sufficient for a combiner —
    /// [`Plan::combinable_reduce`] adds the per-plan legality conditions.
    pub combine: Option<CombineSummary>,
    /// Manual annotations, if provided.
    pub manual_props: Option<LocalProps>,
    /// Cost hints.
    pub hints: CostHints,
    /// Global attributes this operator adds to the record (α of its added
    /// fields).
    pub added_attrs: Vec<AttrId>,
}

impl BoundOp {
    /// The properties under the chosen mode.
    pub fn props(&self, mode: PropertyMode) -> &LocalProps {
        match mode {
            PropertyMode::Sca => &self.sca_props,
            PropertyMode::Manual => self.manual_props.as_ref().unwrap_or(&self.sca_props),
        }
    }

    /// All global attributes of input `i`'s schema.
    pub fn input_attrs(&self, i: usize) -> AttrSet {
        self.layout.inputs[i].attr_set()
    }

    /// Global key attributes of input `i` as a set.
    pub fn key_set(&self, i: usize) -> AttrSet {
        self.key_attrs
            .get(i)
            .map(|k| k.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The combiner folds lifted to global attributes: `(attribute, ⊕)`
    /// per folded field, in input-schema order. `None` when the UDF is not
    /// a proven in-place fold.
    pub fn combine_folds(&self) -> Option<Vec<(AttrId, BinOp)>> {
        let cs = self.combine.as_ref()?;
        cs.folds
            .iter()
            .map(|(&field, &op)| self.layout.inputs[0].get(field).map(|a| (a, op)))
            .collect()
    }

    /// Schema-level legality of running this Reduce as a streaming
    /// aggregation (a combiner or `StreamAgg`): SCA proved the in-place
    /// fold, every pass-through field maps to a grouping key (keys are
    /// constant within a group, so the pass-through is independent of
    /// which group record the UDF copies), and **no folded field is a
    /// grouping key** — folding in place would mutate the very value the
    /// aggregation groups on, re-grouping partials by partial results.
    ///
    /// Necessary but not sufficient for the pre-ship combiner:
    /// [`Plan::combinable_reduce`] adds the per-plan subtree condition.
    pub fn stream_aggregable(&self) -> bool {
        let Some(cs) = &self.combine else {
            return false;
        };
        let Some(folds) = self.combine_folds() else {
            return false;
        };
        let keys = &self.key_attrs[0];
        cs.passthrough.iter().all(|&f| {
            self.layout.inputs[0]
                .get(f)
                .is_some_and(|a| keys.contains(&a))
        }) && folds.iter().all(|(a, _)| !keys.contains(a))
    }
}

/// Identity of a node in a plan tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// A data source (index into [`PlanCtx::sources`]).
    Source(usize),
    /// An operator (index into [`PlanCtx::ops`]).
    Op(usize),
}

/// One node of a plan tree. Trees are persistent: reordering builds new
/// spines and shares unchanged subtrees via [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// What this node is.
    pub kind: NodeKind,
    /// Child subtrees (empty for sources).
    pub children: Vec<Arc<PlanNode>>,
}

impl PlanNode {
    /// Creates a source leaf.
    pub fn source(id: usize) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            kind: NodeKind::Source(id),
            children: vec![],
        })
    }

    /// Creates an operator node.
    pub fn op(id: usize, children: Vec<Arc<PlanNode>>) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            kind: NodeKind::Op(id),
            children,
        })
    }

    /// Canonical textual form — the memo-table key of the enumeration
    /// algorithm (`getMTabKey` in Algorithm 1).
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        self.write_canonical(&mut s);
        s
    }

    fn write_canonical(&self, s: &mut String) {
        match self.kind {
            NodeKind::Source(i) => {
                s.push('s');
                s.push_str(&i.to_string());
            }
            NodeKind::Op(i) => {
                s.push('(');
                s.push_str(&i.to_string());
                for c in &self.children {
                    s.push(' ');
                    c.write_canonical(s);
                }
                s.push(')');
            }
        }
    }

    /// Number of operator nodes in this subtree.
    pub fn n_ops(&self) -> usize {
        let own = matches!(self.kind, NodeKind::Op(_)) as usize;
        own + self.children.iter().map(|c| c.n_ops()).sum::<usize>()
    }
}

/// Shared, immutable context of all alternatives of one bound program.
#[derive(Debug)]
pub struct PlanCtx {
    /// The global record (Definition 1).
    pub global: GlobalRecord,
    /// All bound operators, indexed by op id.
    pub ops: Vec<BoundOp>,
    /// All bound sources, indexed by source id.
    pub sources: Vec<BoundSource>,
}

impl PlanCtx {
    /// Global-record width (tuple width during execution).
    pub fn width(&self) -> usize {
        self.global.width()
    }
}

/// A bound, executable, reorderable data flow plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Shared context (global record, operators, sources).
    pub ctx: Arc<PlanCtx>,
    /// Root of the operator tree (the sink's input).
    pub root: Arc<PlanNode>,
}

impl Plan {
    /// Binds a program (see module docs).
    pub(crate) fn bind(p: &Program) -> Result<Plan, ProgramError> {
        let mut global = GlobalRecord::new();
        let mut sources: Vec<Option<BoundSource>> = vec![None; p.sources.len()];
        // Output redirection per program node.
        let mut out_redir: Vec<Option<Redirection>> = vec![None; p.nodes.len()];
        let mut bound_ops: Vec<Option<BoundOp>> = (0..p.ops.len()).map(|_| None).collect();

        // Bottom-up over the tree (post-order from the root).
        let order = post_order(p);
        for &n in &order {
            match &p.nodes[n] {
                BNode::Source(sid) => {
                    let def: &SourceDef = &p.sources[*sid];
                    let attrs: Vec<AttrId> = def
                        .fields
                        .iter()
                        .map(|f| global.add(format!("{}.{}", def.name, f)))
                        .collect();
                    let unique = def
                        .unique_keys
                        .iter()
                        .map(|k| k.iter().map(|&i| attrs[i]).collect())
                        .collect();
                    sources[*sid] = Some(BoundSource {
                        name: def.name.clone(),
                        attrs: attrs.clone(),
                        unique,
                        est_rows: def.est_rows,
                        est_bytes_per_row: def.est_bytes_per_row,
                    });
                    out_redir[n] = Some(Redirection::new(attrs));
                }
                BNode::Op { op, children } => {
                    let operator: &Operator = &p.ops[*op];
                    let input_redirs: Vec<Redirection> = children
                        .iter()
                        .map(|&c| out_redir[c].clone().expect("post-order"))
                        .collect();
                    // Output α: concatenated inputs followed by new attrs.
                    let mut out: Vec<AttrId> = Vec::new();
                    for r in &input_redirs {
                        out.extend_from_slice(r.as_slice());
                    }
                    let mut added_attrs = Vec::new();
                    for k in 0..operator.udf.added_fields() {
                        let a = global.add(format!("{}.${}", operator.name, k));
                        added_attrs.push(a);
                        out.push(a);
                    }
                    let key_attrs: Vec<Vec<AttrId>> = (0..children.len())
                        .filter_map(|i| {
                            operator.pact.key_of_input(i).map(|key| {
                                key.iter()
                                    .map(|&f| input_redirs[i].get(f).expect("validated key"))
                                    .collect()
                            })
                        })
                        .collect();
                    let layout = Layout {
                        inputs: input_redirs,
                        output: Redirection::new(out.clone()),
                        width: 0, // patched below once |A| is known
                    };
                    bound_ops[*op] = Some(BoundOp {
                        name: operator.name.clone(),
                        pact: operator.pact.clone(),
                        udf: Arc::clone(&operator.udf),
                        layout,
                        key_attrs,
                        sca_props: strato_sca::analyze(&operator.udf),
                        combine: match operator.pact {
                            Pact::Reduce { .. } => strato_sca::combinable(&operator.udf),
                            _ => None,
                        },
                        manual_props: operator.manual_props.clone(),
                        hints: operator.hints.clone(),
                        added_attrs,
                    });
                    out_redir[n] = Some(Redirection::new(out));
                }
            }
        }

        let width = global.width();
        let mut ops: Vec<BoundOp> = bound_ops.into_iter().map(|o| o.expect("bound")).collect();
        for o in &mut ops {
            o.layout.width = width;
        }

        let root = build_tree(p, p.root);
        Ok(Plan {
            ctx: Arc::new(PlanCtx {
                global,
                ops,
                sources: sources.into_iter().map(|s| s.expect("bound")).collect(),
            }),
            root,
        })
    }

    /// Returns the same plan with a different operator tree (used by the
    /// enumerator; the context is shared).
    pub fn with_root(&self, root: Arc<PlanNode>) -> Plan {
        Plan {
            ctx: Arc::clone(&self.ctx),
            root,
        }
    }

    /// Returns a plan whose operators carry new cost hints (one per op id,
    /// e.g. from runtime profiling). The tree is unchanged; the shared
    /// context is cloned shallowly.
    pub fn with_hints(&self, hints: Vec<CostHints>) -> Plan {
        assert_eq!(hints.len(), self.ctx.ops.len(), "one hint set per operator");
        let mut ops = self.ctx.ops.clone();
        for (op, h) in ops.iter_mut().zip(hints) {
            op.hints = h;
        }
        Plan {
            ctx: Arc::new(PlanCtx {
                global: self.ctx.global.clone(),
                ops,
                sources: self.ctx.sources.clone(),
            }),
            root: self.root.clone(),
        }
    }

    /// The set of global attributes produced within a subtree: source
    /// attributes plus attributes added by operators of the subtree.
    pub fn attrs_of(&self, node: &PlanNode) -> AttrSet {
        let mut set = AttrSet::new();
        self.collect_attrs(node, &mut set);
        set
    }

    fn collect_attrs(&self, node: &PlanNode, set: &mut AttrSet) {
        match node.kind {
            NodeKind::Source(s) => {
                for &a in &self.ctx.sources[s].attrs {
                    set.insert(a);
                }
            }
            NodeKind::Op(o) => {
                for &a in &self.ctx.ops[o].added_attrs {
                    set.insert(a);
                }
                for c in &node.children {
                    self.collect_attrs(c, set);
                }
            }
        }
    }

    /// Is the Reduce at `node` legal to precede with a pre-ship combiner
    /// (and to run with a streaming pre-aggregation local strategy)?
    ///
    /// Two layers of conditions, combining SCA's structural proof with
    /// what only the plan knows:
    ///
    /// 1. the schema-level legality of [`BoundOp::stream_aggregable`] —
    ///    SCA proved the in-place fold, pass-through fields are grouping
    ///    keys, and no fold targets a key;
    /// 2. every attribute the node's input subtree can actually populate
    ///    is a key or a folded attribute (attributes outside the subtree
    ///    are null in every record). This is checked against *this* tree —
    ///    a reordered plan (e.g. a Reduce hoisted above a join) may carry
    ///    foreign attributes through the group and is conservatively
    ///    refused.
    ///
    /// Under these the reduce output is a pure function of the group
    /// *bag* (keys + commutative folds + nulls), so splitting the group
    /// into per-partition partial folds and re-reducing is
    /// byte-identical.
    pub fn combinable_reduce(&self, node: &PlanNode) -> bool {
        let NodeKind::Op(o) = node.kind else {
            return false;
        };
        let op = &self.ctx.ops[o];
        if !matches!(op.pact, Pact::Reduce { .. }) || !op.stream_aggregable() {
            return false;
        }
        let folds = op.combine_folds().expect("stream_aggregable implies folds");
        let keys = &op.key_attrs[0];
        // Whatever the subtree can populate must be key or fold.
        self.attrs_of(&node.children[0])
            .iter()
            .all(|a| keys.contains(&a) || folds.iter().any(|&(fa, _)| fa == a))
    }

    /// Canonical form of the whole plan (memo-table key).
    pub fn canonical(&self) -> String {
        self.root.canonical()
    }

    /// The operator ids of the tree in pre-order (diagnostics, tests).
    pub fn op_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(n: &PlanNode, out: &mut Vec<usize>) {
            if let NodeKind::Op(o) = n.kind {
                out.push(o);
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Renders the plan as an indented tree of operator names.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_node(&self.root, 0, &mut s);
        s
    }

    fn render_node(&self, n: &PlanNode, depth: usize, s: &mut String) {
        for _ in 0..depth {
            s.push_str("  ");
        }
        match n.kind {
            NodeKind::Source(i) => {
                s.push_str(&self.ctx.sources[i].name);
                s.push('\n');
            }
            NodeKind::Op(i) => {
                let op = &self.ctx.ops[i];
                s.push_str(&format!("{} [{}]\n", op.name, op.pact.kind_name()));
                for c in &n.children {
                    self.render_node(c, depth + 1, s);
                }
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn post_order(p: &Program) -> Vec<usize> {
    let mut out = Vec::new();
    fn walk(p: &Program, n: usize, out: &mut Vec<usize>) {
        if let BNode::Op { children, .. } = &p.nodes[n] {
            for &c in children {
                walk(p, c, out);
            }
        }
        out.push(n);
    }
    walk(p, p.root, &mut out);
    out
}

fn build_tree(p: &Program, n: usize) -> Arc<PlanNode> {
    match &p.nodes[n] {
        BNode::Source(s) => PlanNode::source(*s),
        BNode::Op { op, children } => {
            let kids = children.iter().map(|&c| build_tree(p, c)).collect();
            PlanNode::op(*op, kids)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, SourceDef};
    use strato_ir::{FuncBuilder, UdfKind};

    fn identity_map(width: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![width]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn append_map(width: usize) -> Function {
        let mut b = FuncBuilder::new("app", UdfKind::Map, vec![width]);
        let or = b.copy_input(0);
        let v = b.konst(1i64);
        b.set(or, width, v);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn simple_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a", "b"], 100).with_unique_key(&[0]));
        let r = p.source(SourceDef::new("r", &["c"], 10));
        let m = p.map("add1", append_map(2), CostHints::default(), l);
        let j = p.match_(
            "join",
            &[0],
            &[0],
            join_udf(3, 1),
            CostHints::default(),
            m,
            r,
        );
        p.finish(j).unwrap().bind().unwrap()
    }

    #[test]
    fn global_record_names_all_attrs() {
        let plan = simple_plan();
        let g = &plan.ctx.global;
        // l.a, l.b, r.c, add1.$0 = 4 attrs.
        assert_eq!(g.width(), 4);
        assert!(g.by_name("l.a").is_some());
        assert!(g.by_name("l.b").is_some());
        assert!(g.by_name("r.c").is_some());
        assert!(g.by_name("add1.$0").is_some());
    }

    #[test]
    fn redirections_map_locals_to_globals() {
        let plan = simple_plan();
        let join = plan
            .ctx
            .ops
            .iter()
            .find(|o| o.name == "join")
            .expect("join op");
        // Join's left input schema is (l.a, l.b, add1.$0).
        let left_attrs: Vec<&str> = join.layout.inputs[0]
            .as_slice()
            .iter()
            .map(|a| plan.ctx.global.name(*a))
            .collect();
        assert_eq!(left_attrs, vec!["l.a", "l.b", "add1.$0"]);
        // Output α covers both inputs.
        assert_eq!(join.layout.output.arity(), 4);
        assert_eq!(join.layout.width, 4);
    }

    #[test]
    fn key_attrs_resolved_globally() {
        let plan = simple_plan();
        let join = plan.ctx.ops.iter().find(|o| o.name == "join").unwrap();
        let la = plan.ctx.global.by_name("l.a").unwrap();
        let rc = plan.ctx.global.by_name("r.c").unwrap();
        assert_eq!(join.key_attrs, vec![vec![la], vec![rc]]);
    }

    #[test]
    fn unique_keys_bound_to_attr_sets() {
        let plan = simple_plan();
        let l = &plan.ctx.sources[0];
        let la = plan.ctx.global.by_name("l.a").unwrap();
        assert_eq!(l.unique, vec![AttrSet::singleton(la)]);
    }

    #[test]
    fn attrs_of_subtree() {
        let plan = simple_plan();
        // Root covers everything.
        assert_eq!(plan.attrs_of(&plan.root).len(), 4);
        // Left child of join (the map) covers l.* and add1.$0.
        let map_node = &plan.root.children[0];
        let attrs = plan.attrs_of(map_node);
        assert_eq!(attrs.len(), 3);
        assert!(!attrs.contains(plan.ctx.global.by_name("r.c").unwrap()));
    }

    #[test]
    fn canonical_forms_distinguish_trees() {
        let plan = simple_plan();
        let c1 = plan.canonical();
        // Swap join children → different canonical string.
        let root = &plan.root;
        let swapped = PlanNode::op(
            match root.kind {
                NodeKind::Op(o) => o,
                _ => unreachable!(),
            },
            vec![root.children[1].clone(), root.children[0].clone()],
        );
        assert_ne!(c1, swapped.canonical());
    }

    #[test]
    fn sca_props_computed_per_op() {
        let plan = simple_plan();
        let add1 = plan.ctx.ops.iter().find(|o| o.name == "add1").unwrap();
        assert!(add1.sca_props.emits.exactly_one());
        assert_eq!(add1.props(PropertyMode::Sca).added.len(), 1);
        // Manual mode falls back to SCA when no annotation present.
        assert_eq!(add1.props(PropertyMode::Manual), &add1.sca_props);
    }

    #[test]
    fn with_root_shares_context() {
        let plan = simple_plan();
        let alt = plan.with_root(plan.root.clone());
        assert!(Arc::ptr_eq(&plan.ctx, &alt.ctx));
        assert_eq!(plan.canonical(), alt.canonical());
    }

    #[test]
    fn render_shows_tree() {
        let plan = simple_plan();
        let r = plan.render();
        assert!(r.contains("join [Match]"), "{r}");
        assert!(r.contains("add1 [Map]"), "{r}");
    }

    #[test]
    fn op_order_preorder() {
        let plan = simple_plan();
        // join (op id 1) before add1 (op id 0) in pre-order.
        assert_eq!(plan.op_order(), vec![1, 0]);
    }

    #[test]
    fn n_ops_counts() {
        let plan = simple_plan();
        assert_eq!(plan.root.n_ops(), 2);
    }

    /// In-place sum: fold field `field` with Add, write it back in place.
    fn sum_inplace(w: usize, field: usize) -> Function {
        use strato_ir::BinOp;
        let mut b = FuncBuilder::new("sum_ip", UdfKind::Group, vec![w]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, field, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn combinable_reduce_with_key_covered_passthrough() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 100));
        let r = p.reduce("agg", &[0], sum_inplace(2, 1), CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        assert!(plan.combinable_reduce(&plan.root));
        let op = &plan.ctx.ops[0];
        let folds = op.combine_folds().expect("folds");
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].0, plan.ctx.global.by_name("s.v").unwrap());
    }

    #[test]
    fn combiner_refused_when_passthrough_is_not_a_key() {
        // Extra payload column that is neither key nor fold: the UDF still
        // matches structurally, but the plan-level legality must refuse.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v", "payload"], 100));
        let r = p.reduce("agg", &[0], sum_inplace(3, 1), CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        assert!(plan.ctx.ops[0].combine.is_some(), "structural proof holds");
        assert!(!plan.combinable_reduce(&plan.root), "payload blocks it");
    }

    #[test]
    fn combiner_refused_when_fold_targets_the_key() {
        // Grouping on the very field the fold overwrites: a streaming
        // aggregation would mutate the key partials re-group on,
        // re-grouping by partial sums. Structurally combinable, but the
        // schema-level legality must refuse.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k"], 100));
        let r = p.reduce("agg", &[0], sum_inplace(1, 0), CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        let op = &plan.ctx.ops[0];
        assert!(op.combine.is_some(), "structural proof holds");
        assert!(!op.stream_aggregable(), "fold on the key is illegal");
        assert!(!plan.combinable_reduce(&plan.root));
        // Same with a multi-field key covering the fold target.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 100));
        let r = p.reduce("agg", &[0, 1], sum_inplace(2, 1), CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        assert!(!plan.ctx.ops[0].stream_aggregable());
        assert!(!plan.combinable_reduce(&plan.root));
    }

    #[test]
    fn combiner_refused_for_appended_aggregate_and_non_reduce() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 100));
        // Appended sum (new output field): not an in-place fold.
        let append = {
            use strato_ir::BinOp;
            let mut b = FuncBuilder::new("sum_app", UdfKind::Group, vec![2]);
            let acc = b.konst(0i64);
            let it = b.iter_open(0);
            let done = b.new_label();
            let head = b.new_label();
            b.place(head);
            let r = b.iter_next(it, done);
            let v = b.get(r, 1);
            b.bin_into(acc, BinOp::Add, acc, v);
            b.jump(head);
            b.place(done);
            let it2 = b.iter_open(0);
            let nil = b.new_label();
            let first = b.iter_next(it2, nil);
            let or = b.copy(first);
            b.set(or, 2, acc);
            b.emit(or);
            b.place(nil);
            b.ret();
            b.finish().unwrap()
        };
        let r = p.reduce("agg", &[0], append, CostHints::default(), s);
        let plan = p.finish(r).unwrap().bind().unwrap();
        assert!(plan.ctx.ops[0].combine.is_none());
        assert!(!plan.combinable_reduce(&plan.root));
        // Source nodes are trivially not combinable reduces.
        assert!(!plan.combinable_reduce(&plan.root.children[0]));
    }

    #[test]
    fn identity_map_binding_keeps_width() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["x"], 10));
        let m = p.map("id", identity_map(1), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        assert_eq!(plan.ctx.width(), 1);
    }
}
