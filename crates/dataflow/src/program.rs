//! Program construction: an ownership-based builder for tree-shaped flows.

use crate::operator::{CostHints, Operator};
use crate::pact::Pact;
use crate::plan::Plan;
use strato_ir::Function;

/// Definition of a data source: a named schema plus optional uniqueness
/// constraints and cardinality hints for the cost model.
#[derive(Debug, Clone)]
pub struct SourceDef {
    /// Source name (used to name global attributes, e.g. `lineitem.l_qty`).
    pub name: String,
    /// Field names, in schema order.
    pub fields: Vec<String>,
    /// Field-index sets that are unique keys of this source (e.g. a primary
    /// key). The optimizer uses these for the PK–FK precondition of the
    /// invariant-grouping rewrite (Section 4.3.2).
    pub unique_keys: Vec<Vec<usize>>,
    /// Estimated row count (cost model input).
    pub est_rows: u64,
    /// Estimated bytes per row (cost model input).
    pub est_bytes_per_row: u64,
}

impl SourceDef {
    /// Creates a source definition with no uniqueness constraints.
    pub fn new(name: impl Into<String>, fields: &[&str], est_rows: u64) -> Self {
        SourceDef {
            name: name.into(),
            fields: fields.iter().map(|s| s.to_string()).collect(),
            unique_keys: Vec::new(),
            est_rows,
            est_bytes_per_row: 16 * fields.len() as u64,
        }
    }

    /// Declares a unique key (set of field indices).
    pub fn with_unique_key(mut self, key: &[usize]) -> Self {
        self.unique_keys.push(key.to_vec());
        self
    }

    /// Sets the bytes-per-row estimate.
    pub fn with_bytes_per_row(mut self, b: u64) -> Self {
        self.est_bytes_per_row = b;
        self
    }
}

/// A handle to a node under construction. Deliberately neither `Copy` nor
/// `Clone`: every node is consumed exactly once, so only tree-shaped flows
/// can be expressed (the restriction Section 6 of the paper places on the
/// enumeration algorithm).
#[derive(Debug)]
pub struct NodeHandle(pub(crate) usize);

/// Internal node representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BNode {
    Source(usize),
    Op { op: usize, children: Vec<usize> },
}

/// Errors detected while finishing or binding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An operator's UDF input width disagrees with its child's schema.
    WidthMismatch {
        /// Operator name.
        op: String,
        /// Input index.
        input: usize,
        /// Width the UDF declares.
        declared: usize,
        /// Width the child produces.
        actual: usize,
    },
    /// A key field index is outside the child's schema.
    KeyOutOfRange {
        /// Operator name.
        op: String,
        /// Offending field index.
        field: usize,
    },
    /// The number of children does not match the PACT arity.
    ArityMismatch {
        /// Operator name.
        op: String,
    },
    /// A built node was never connected to the flow.
    UnusedNode(usize),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::WidthMismatch {
                op,
                input,
                declared,
                actual,
            } => write!(
                f,
                "operator {op}: input {input} declares width {declared} but child produces {actual}"
            ),
            ProgramError::KeyOutOfRange { op, field } => {
                write!(f, "operator {op}: key field {field} out of range")
            }
            ProgramError::ArityMismatch { op } => {
                write!(f, "operator {op}: child count does not match PACT arity")
            }
            ProgramError::UnusedNode(n) => write!(f, "node {n} was never used in the flow"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builder for [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    pub(crate) sources: Vec<SourceDef>,
    pub(crate) ops: Vec<Operator>,
    pub(crate) nodes: Vec<BNode>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data source.
    pub fn source(&mut self, def: SourceDef) -> NodeHandle {
        let sid = self.sources.len();
        self.sources.push(def);
        self.nodes.push(BNode::Source(sid));
        NodeHandle(self.nodes.len() - 1)
    }

    /// Adds an arbitrary operator over child nodes.
    pub fn op(&mut self, operator: Operator, children: Vec<NodeHandle>) -> NodeHandle {
        let oid = self.ops.len();
        self.ops.push(operator);
        let kids = children.into_iter().map(|h| h.0).collect();
        self.nodes.push(BNode::Op {
            op: oid,
            children: kids,
        });
        NodeHandle(self.nodes.len() - 1)
    }

    /// Adds a Map operator.
    pub fn map(
        &mut self,
        name: &str,
        udf: Function,
        hints: CostHints,
        input: NodeHandle,
    ) -> NodeHandle {
        self.op(Operator::new(name, Pact::Map, udf, hints), vec![input])
    }

    /// Adds a Reduce operator grouping on `key` (local field indices).
    pub fn reduce(
        &mut self,
        name: &str,
        key: &[usize],
        udf: Function,
        hints: CostHints,
        input: NodeHandle,
    ) -> NodeHandle {
        self.op(
            Operator::new(name, Pact::Reduce { key: key.to_vec() }, udf, hints),
            vec![input],
        )
    }

    /// Adds a Match (equi-join) operator.
    #[allow(clippy::too_many_arguments)]
    pub fn match_(
        &mut self,
        name: &str,
        key_left: &[usize],
        key_right: &[usize],
        udf: Function,
        hints: CostHints,
        left: NodeHandle,
        right: NodeHandle,
    ) -> NodeHandle {
        self.op(
            Operator::new(
                name,
                Pact::Match {
                    key_left: key_left.to_vec(),
                    key_right: key_right.to_vec(),
                },
                udf,
                hints,
            ),
            vec![left, right],
        )
    }

    /// Adds a Cross (Cartesian product) operator.
    pub fn cross(
        &mut self,
        name: &str,
        udf: Function,
        hints: CostHints,
        left: NodeHandle,
        right: NodeHandle,
    ) -> NodeHandle {
        self.op(
            Operator::new(name, Pact::Cross, udf, hints),
            vec![left, right],
        )
    }

    /// Adds a CoGroup operator.
    #[allow(clippy::too_many_arguments)]
    pub fn cogroup(
        &mut self,
        name: &str,
        key_left: &[usize],
        key_right: &[usize],
        udf: Function,
        hints: CostHints,
        left: NodeHandle,
        right: NodeHandle,
    ) -> NodeHandle {
        self.op(
            Operator::new(
                name,
                Pact::CoGroup {
                    key_left: key_left.to_vec(),
                    key_right: key_right.to_vec(),
                },
                udf,
                hints,
            ),
            vec![left, right],
        )
    }

    /// Finishes the program with `root` as the sink's input and validates
    /// structure, widths and keys.
    pub fn finish(self, root: NodeHandle) -> Result<Program, ProgramError> {
        let p = Program {
            sources: self.sources,
            ops: self.ops,
            nodes: self.nodes,
            root: root.0,
        };
        p.validate()?;
        Ok(p)
    }
}

/// A validated (but unbound) tree-shaped data flow program.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) sources: Vec<SourceDef>,
    pub(crate) ops: Vec<Operator>,
    pub(crate) nodes: Vec<BNode>,
    pub(crate) root: usize,
}

impl Program {
    /// Output schema width of a node.
    pub(crate) fn node_width(&self, node: usize) -> usize {
        match &self.nodes[node] {
            BNode::Source(s) => self.sources[*s].fields.len(),
            BNode::Op { op, .. } => self.ops[*op].udf.output_width(),
        }
    }

    fn validate(&self) -> Result<(), ProgramError> {
        let mut used = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            used[n] = true;
            if let BNode::Op { op, children } = &self.nodes[n] {
                let o = &self.ops[*op];
                if children.len() != o.pact.n_inputs() {
                    return Err(ProgramError::ArityMismatch { op: o.name.clone() });
                }
                for (i, &c) in children.iter().enumerate() {
                    let actual = self.node_width(c);
                    let declared = o.udf.input_widths()[i];
                    if actual != declared {
                        return Err(ProgramError::WidthMismatch {
                            op: o.name.clone(),
                            input: i,
                            declared,
                            actual,
                        });
                    }
                    if let Some(key) = o.pact.key_of_input(i) {
                        for &k in key {
                            if k >= actual {
                                return Err(ProgramError::KeyOutOfRange {
                                    op: o.name.clone(),
                                    field: k,
                                });
                            }
                        }
                    }
                    stack.push(c);
                }
            }
        }
        if let Some(unused) = used.iter().position(|u| !u) {
            return Err(ProgramError::UnusedNode(unused));
        }
        Ok(())
    }

    /// Binds the program: builds the global record, redirection maps, key
    /// attribute sets and per-operator SCA properties. See [`Plan`].
    pub fn bind(&self) -> Result<Plan, ProgramError> {
        Plan::bind(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::{FuncBuilder, UdfKind};

    fn identity_map(width: usize) -> Function {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![width]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn linear_flow_builds() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 100));
        let m = p.map("m1", identity_map(2), CostHints::default(), s);
        let prog = p.finish(m).unwrap();
        assert_eq!(prog.node_width(prog.root), 2);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b", "c"], 100));
        let m = p.map("m1", identity_map(2), CostHints::default(), s);
        let err = p.finish(m).unwrap_err();
        assert!(matches!(err, ProgramError::WidthMismatch { .. }));
    }

    #[test]
    fn key_out_of_range_rejected() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a"], 100));
        let udf = {
            let mut b = FuncBuilder::new("g", UdfKind::Group, vec![1]);
            let or = b.new_rec();
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        };
        let r = p.reduce("r", &[5], udf, CostHints::default(), s);
        let err = p.finish(r).unwrap_err();
        assert!(matches!(err, ProgramError::KeyOutOfRange { .. }));
    }

    #[test]
    fn unused_node_rejected() {
        let mut p = ProgramBuilder::new();
        let s1 = p.source(SourceDef::new("s1", &["a"], 100));
        let _s2 = p.source(SourceDef::new("s2", &["b"], 100));
        let m = p.map("m", identity_map(1), CostHints::default(), s1);
        let err = p.finish(m).unwrap_err();
        assert!(matches!(err, ProgramError::UnusedNode(_)));
    }

    #[test]
    fn binary_flow_builds() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a", "b"], 100).with_unique_key(&[0]));
        let r = p.source(SourceDef::new("r", &["c"], 10));
        let j = p.match_("j", &[0], &[0], join_udf(2, 1), CostHints::default(), l, r);
        let prog = p.finish(j).unwrap();
        assert_eq!(prog.node_width(prog.root), 3);
    }

    #[test]
    fn source_def_builders() {
        let s = SourceDef::new("t", &["x", "y"], 5)
            .with_unique_key(&[0])
            .with_bytes_per_row(99);
        assert_eq!(s.unique_keys, vec![vec![0]]);
        assert_eq!(s.est_bytes_per_row, 99);
    }
}
