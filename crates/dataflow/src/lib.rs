//! # strato-dataflow — the PACT programming model
//!
//! Implements Sections 2.2–2.3 of *"Opening the Black Boxes in Data Flow
//! Optimization"*: data analysis programs are **tree-shaped data flows** of
//! operators, each pairing a second-order function (a *PACT*: Map, Reduce,
//! Cross, Match, CoGroup) with a first-order black-box UDF written in
//! [`strato_ir`] three-address code.
//!
//! The crate provides:
//!
//! * [`Pact`] — the five second-order functions with their key fields,
//! * [`Operator`] — PACT + UDF + optional manual property annotations +
//!   cost hints (the paper's "Average Number of Records Emitted per UDF
//!   Call", "CPU Cost per UDF Call", "Number of Distinct Values per
//!   Key-Set"),
//! * [`ProgramBuilder`] — an ownership-based builder: node handles are
//!   consumed by value, so non-tree-shaped flows are unrepresentable,
//! * **binding** ([`Program::bind`]) — assembles the global record
//!   (Definition 1), the per-operator redirection maps α, maps key fields
//!   to global attributes, and runs the static code analysis once per
//!   operator. The resulting [`Plan`] is what the optimizer reorders and
//!   the engine executes.

#![warn(missing_docs)]

pub mod operator;
pub mod pact;
pub mod plan;
pub mod program;
pub mod spec;

pub use operator::{CostHints, Operator};
pub use pact::Pact;
pub use plan::{BoundOp, BoundSource, NodeKind, Plan, PlanCtx, PlanNode, PropertyMode};
pub use program::{NodeHandle, Program, ProgramBuilder, ProgramError, SourceDef};
pub use spec::{FlowSpec, NodeSpec, OpSpec, SourceSpec, SpecError};
