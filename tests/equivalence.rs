//! The plan-equivalence harness — the paper's safety property.
//!
//! Section 5: "Our method is safe if P′ and P produce the same query result
//! for every possible input I." These tests enumerate the full reordering
//! space of representative programs, execute *every* alternative on seeded
//! random data with the logical executor, and assert multiset equality of
//! the outputs. Physical plans are additionally cross-checked against the
//! logical oracle.

use rand::prelude::*;
use rand::rngs::StdRng;
use strato::core::{enumerate_all, Optimizer, PropTable};
use strato::dataflow::{CostHints, Plan, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute, execute_logical, execute_with, BatchLayout, ExecOptions, Inputs};
use strato::ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};
use strato::record::{DataSet, Record, RecordBatch, Value};

// ---------------------------------------------------------------------------
// UDF zoo
// ---------------------------------------------------------------------------

fn filter_lt_zero(w: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
    let v = b.get_input(0, field);
    let z = b.konst(0i64);
    let c = b.bin(BinOp::Lt, v, z);
    let end = b.new_label();
    b.branch(c, end);
    let or = b.copy_input(0);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().unwrap()
}

fn abs_field(w: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new("abs", UdfKind::Map, vec![w]);
    let v = b.get_input(0, field);
    let or = b.copy_input(0);
    let a = b.un(UnOp::Abs, v);
    b.set(or, field, a);
    b.emit(or);
    b.ret();
    b.finish().unwrap()
}

fn add_const(w: usize, field: usize, k: i64) -> Function {
    let mut b = FuncBuilder::new("addc", UdfKind::Map, vec![w]);
    let v = b.get_input(0, field);
    let c = b.konst(k);
    let s = b.bin(BinOp::Add, v, c);
    let or = b.copy_input(0);
    b.set(or, field, s);
    b.emit(or);
    b.ret();
    b.finish().unwrap()
}

/// Reduce UDF: copy the first record of the group and append sum(field).
fn sum_group(w: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![w]);
    let sum = b.konst(0i64);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let v = b.get(r, field);
    b.bin_into(sum, BinOp::Add, sum, v);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, w, sum);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().unwrap()
}

/// Reduce UDF: emit all records of groups that contain a record with
/// `field > 0` (all-or-nothing group filter, like "Filter Buy Sessions").
fn group_filter_any_positive(w: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new("gfilter", UdfKind::Group, vec![w]);
    let found = b.konst(false);
    let it = b.iter_open(0);
    let scan_done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, scan_done);
    let v = b.get(r, field);
    let z = b.konst(0i64);
    let pos = b.bin(BinOp::Gt, v, z);
    b.bin_into(found, BinOp::Or, found, pos);
    b.jump(head);
    b.place(scan_done);
    let end = b.new_label();
    b.branch_not(found, end);
    let it2 = b.iter_open(0);
    let emit_done = b.new_label();
    let head2 = b.new_label();
    b.place(head2);
    let r2 = b.iter_next(it2, emit_done);
    let or = b.copy(r2);
    b.emit(or);
    b.jump(head2);
    b.place(emit_done);
    b.place(end);
    b.ret();
    b.finish().unwrap()
}

fn join_concat(l: usize, r: usize) -> Function {
    let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
    let or = b.concat_inputs();
    b.emit(or);
    b.ret();
    b.finish().unwrap()
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn random_ds(rng: &mut StdRng, rows: usize, widths: usize, key_domain: i64) -> DataSet {
    (0..rows)
        .map(|_| {
            Record::from_values(
                (0..widths).map(|_| Value::Int(rng.gen_range(-key_domain..=key_domain))),
            )
        })
        .collect()
}

/// Enumerates all plans in both property modes and asserts every
/// alternative produces the same bag as the original order.
fn assert_all_plans_equivalent(plan: &Plan, inputs: &Inputs, min_expected_plans: usize) {
    let (reference, _) = execute_logical(plan, inputs).expect("reference execution");
    for mode in [PropertyMode::Sca, PropertyMode::Manual] {
        let props = PropTable::build(plan, mode);
        let alts = enumerate_all(plan, &props, 50_000);
        assert!(
            alts.len() >= min_expected_plans,
            "expected at least {min_expected_plans} plans, got {} ({mode:?})",
            alts.len()
        );
        for alt in &alts {
            let (out, _) = execute_logical(alt, inputs).expect("alternative execution");
            if let Err(diff) = reference.bag_diff(&out) {
                panic!(
                    "plan not equivalent under {mode:?}:\n{}\ndiff: {diff}",
                    alt.render()
                );
            }
        }
    }
}

#[test]
fn section3_example_three_maps() {
    // The paper's running example: f1 = |B|, f2 = filter A ≥ 0,
    // f3 = A := A + B. Only f1 ↔ f2 may swap.
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("i", &["a", "b"], 64));
    let m1 = p.map("f1", abs_field(2, 1), CostHints::default(), s);
    let m2 = p.map("f2", filter_lt_zero(2, 0), CostHints::default(), m1);
    let m3 = p.map(
        "f3",
        {
            let mut b = FuncBuilder::new("f3", UdfKind::Map, vec![2]);
            let a = b.get_input(0, 0);
            let bb = b.get_input(0, 1);
            let sum = b.bin(BinOp::Add, a, bb);
            let or = b.copy_input(0);
            b.set(or, 0, sum);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        },
        CostHints::default(),
        m2,
    );
    let plan = p.finish(m3).unwrap().bind().unwrap();

    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 1000);
    assert_eq!(alts.len(), 2, "exactly f1↔f2 may swap");

    let mut rng = StdRng::seed_from_u64(42);
    let mut inputs = Inputs::new();
    inputs.insert("i".into(), random_ds(&mut rng, 64, 2, 50));
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn map_chain_with_writes_and_filters() {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["a", "b", "c", "d"], 48));
    let m1 = p.map("abs_a", abs_field(4, 0), CostHints::default(), s);
    let m2 = p.map("flt_b", filter_lt_zero(4, 1), CostHints::default(), m1);
    let m3 = p.map("add_c", add_const(4, 2, 7), CostHints::default(), m2);
    let m4 = p.map("flt_d", filter_lt_zero(4, 3), CostHints::default(), m3);
    let plan = p.finish(m4).unwrap().bind().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), random_ds(&mut rng, 48, 4, 20));
    // Four ops touching disjoint fields: all 24 orders must be valid.
    assert_all_plans_equivalent(&plan, &inputs, 24);
}

#[test]
fn conflicting_writes_do_not_reorder() {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["a"], 16));
    let m1 = p.map("add1", add_const(1, 0, 1), CostHints::default(), s);
    let m2 = p.map("abs", abs_field(1, 0), CostHints::default(), m1);
    let plan = p.finish(m2).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    // (x+1).abs() ≠ x.abs()+1 — the ROC condition must block this.
    assert_eq!(enumerate_all(&plan, &props, 100).len(), 1);
}

#[test]
fn map_reduce_key_filter_crosses() {
    // Filter on the grouping key may cross the Reduce; filter on the
    // aggregated field may not.
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], 60));
    let m = p.map("keyflt", filter_lt_zero(2, 0), CostHints::default(), s);
    let r = p.reduce("sum", &[0], sum_group(2, 1), CostHints::default(), m);
    let plan = p.finish(r).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    assert_eq!(enumerate_all(&plan, &props, 100).len(), 2);

    let mut rng = StdRng::seed_from_u64(11);
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), random_ds(&mut rng, 60, 2, 5));
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn map_value_filter_blocked_by_reduce() {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], 16));
    let r = p.reduce("sum", &[0], sum_group(2, 1), CostHints::default(), s);
    let m = p.map("vflt", filter_lt_zero(3, 1), CostHints::default(), r);
    let plan = p.finish(m).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    // v is not the key and feeds the sum → blocked.
    assert_eq!(enumerate_all(&plan, &props, 100).len(), 1);
}

#[test]
fn filter_pushes_through_join_on_single_side() {
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk", "lv"], 40));
    let r = p.source(SourceDef::new("r", &["rk", "rv"], 30));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 2),
        CostHints::default(),
        l,
        r,
    );
    let f = p.map("flt_l", filter_lt_zero(4, 1), CostHints::default(), j);
    let plan = p.finish(f).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 100);
    assert_eq!(alts.len(), 2, "filter on l.lv must push below the join");

    let mut rng = StdRng::seed_from_u64(13);
    let mut inputs = Inputs::new();
    inputs.insert("l".into(), random_ds(&mut rng, 40, 2, 6));
    inputs.insert("r".into(), random_ds(&mut rng, 30, 2, 6));
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn filter_on_join_key_stays_put_only_if_it_writes() {
    // A map that REWRITES the join key must not cross the join.
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk"], 16));
    let r = p.source(SourceDef::new("r", &["rk"], 16));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(1, 1),
        CostHints::default(),
        l,
        r,
    );
    let m = p.map("bump", add_const(2, 0, 1), CostHints::default(), j);
    let plan = p.finish(m).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    assert_eq!(enumerate_all(&plan, &props, 100).len(), 1);
}

#[test]
fn invariant_grouping_reduce_through_pk_fk_match() {
    // Reduce on the FK side key may cross a PK–FK Match (Q15 shape).
    let mut p = ProgramBuilder::new();
    let li = p.source(SourceDef::new("li", &["suppkey", "price"], 80));
    let su = p.source(SourceDef::new("su", &["skey", "sname"], 10).with_unique_key(&[0]));
    let agg = p.reduce("agg", &[0], sum_group(2, 1), CostHints::default(), li);
    let j = p.match_(
        "jn",
        &[0],
        &[0],
        join_concat(3, 2),
        CostHints::default(),
        agg,
        su,
    );
    let plan = p.finish(j).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 100);
    assert_eq!(alts.len(), 2, "aggregation push-up must be found");

    let mut rng = StdRng::seed_from_u64(17);
    let mut inputs = Inputs::new();
    inputs.insert("li".into(), random_ds(&mut rng, 80, 2, 8));
    // Unique supplier keys -8..=8 with names.
    let su_ds: DataSet = (-8..=8i64)
        .map(|k| Record::from_values([Value::Int(k), Value::str(format!("s{k}"))]))
        .collect();
    inputs.insert("su".into(), su_ds);
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn invariant_grouping_blocked_without_uniqueness() {
    // Same shape but the supplier side has NO unique key: blocked.
    let mut p = ProgramBuilder::new();
    let li = p.source(SourceDef::new("li", &["suppkey", "price"], 80));
    let su = p.source(SourceDef::new("su", &["skey", "sname"], 10));
    let agg = p.reduce("agg", &[0], sum_group(2, 1), CostHints::default(), li);
    let j = p.match_(
        "jn",
        &[0],
        &[0],
        join_concat(3, 2),
        CostHints::default(),
        agg,
        su,
    );
    let plan = p.finish(j).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    assert_eq!(enumerate_all(&plan, &props, 100).len(), 1);
}

#[test]
fn group_preserving_match_crosses_group_filter_reduce() {
    // Clickstream shape: Reduce(all-or-nothing filter) then a PK-FK Match
    // on the same grouping key — the Match may sink below the Reduce.
    let mut p = ProgramBuilder::new();
    let clicks = p.source(SourceDef::new("clicks", &["session", "action"], 60));
    let login = p.source(SourceDef::new("login", &["lsession", "user"], 20).with_unique_key(&[0]));
    let r = p.reduce(
        "buy",
        &[0],
        group_filter_any_positive(2, 1),
        CostHints::default(),
        clicks,
    );
    let j = p.match_(
        "logged",
        &[0],
        &[0],
        join_concat(2, 2),
        CostHints::default(),
        r,
        login,
    );
    let plan = p.finish(j).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 100);
    assert_eq!(alts.len(), 2);

    let mut rng = StdRng::seed_from_u64(23);
    let mut inputs = Inputs::new();
    inputs.insert("clicks".into(), random_ds(&mut rng, 60, 2, 6));
    let login_ds: DataSet = (-6..=6i64)
        .map(|k| Record::from_values([Value::Int(k), Value::Int(k * 100)]))
        .collect();
    inputs.insert("login".into(), login_ds);
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn join_rotation_bushy_equivalence() {
    // Three-way join chain R ⋈ S ⋈ T where the upper join touches only
    // R and T attributes: rotation must be found and be equivalent.
    let mut p = ProgramBuilder::new();
    let rr = p.source(SourceDef::new("r", &["rk", "rv"], 30));
    let ss = p.source(SourceDef::new("s", &["sk"], 20));
    let tt = p.source(SourceDef::new("t", &["tk"], 20));
    // j1: r.rk = s.sk ; j2: r.rv = t.tk (upper join reads only R and T).
    let j1 = p.match_(
        "j1",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default(),
        rr,
        ss,
    );
    let j2 = p.match_(
        "j2",
        &[1],
        &[0],
        join_concat(3, 1),
        CostHints::default(),
        j1,
        tt,
    );
    let plan = p.finish(j2).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 100);
    assert!(
        alts.len() >= 2,
        "rotation must be discovered, got {}",
        alts.len()
    );

    let mut rng = StdRng::seed_from_u64(29);
    let mut inputs = Inputs::new();
    inputs.insert("r".into(), random_ds(&mut rng, 30, 2, 5));
    inputs.insert("s".into(), random_ds(&mut rng, 20, 1, 5));
    inputs.insert("t".into(), random_ds(&mut rng, 20, 1, 5));
    assert_all_plans_equivalent(&plan, &inputs, 2);
}

#[test]
fn physical_plans_agree_with_logical_for_every_alternative() {
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk", "lv"], 50));
    let r = p.source(SourceDef::new("r", &["rk"], 20).with_unique_key(&[0]));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default(),
        l,
        r,
    );
    let f = p.map("flt", filter_lt_zero(3, 1), CostHints::default(), j);
    let g = p.reduce("sum", &[0], sum_group(3, 1), CostHints::default(), f);
    let plan = p.finish(g).unwrap().bind().unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    let mut inputs = Inputs::new();
    inputs.insert("l".into(), random_ds(&mut rng, 50, 2, 7));
    let r_ds: DataSet = (-7..=7i64)
        .map(|k| Record::from_values([Value::Int(k)]))
        .collect();
    inputs.insert("r".into(), r_ds);

    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    let opt = Optimizer::new(PropertyMode::Sca).with_dop(4);
    let report = opt.optimize(&plan);
    assert!(report.n_enumerated >= 2);
    for ranked in &report.ranked {
        let (out, _) = execute(&ranked.plan, &ranked.phys, &inputs, 4).unwrap();
        if let Err(diff) = reference.bag_diff(&out) {
            panic!(
                "physical execution diverged:\n{}\n{}\ndiff: {diff}",
                ranked.plan.render(),
                ranked.phys.render(&ranked.plan)
            );
        }
    }
}

#[test]
fn physical_agrees_with_logical_across_dop_and_batch_size() {
    // The operator runtime must be invariant under the degree of
    // parallelism, the batch boundaries, AND the batch layout. Sweep
    // dop ∈ {1, 2, 4, 8} × batch size ∈ {1, default} × layout ∈
    // {row-view, columnar-native} over a join + filter + reduce plan,
    // with wire validation enabled so the opt-in round-trip check also
    // runs on both layouts.
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk", "lv"], 50));
    let r = p.source(SourceDef::new("r", &["rk"], 20).with_unique_key(&[0]));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default(),
        l,
        r,
    );
    let f = p.map("flt", filter_lt_zero(3, 1), CostHints::default(), j);
    let g = p.reduce("sum", &[0], sum_group(3, 1), CostHints::default(), f);
    let plan = p.finish(g).unwrap().bind().unwrap();

    let mut rng = StdRng::seed_from_u64(37);
    let mut inputs = Inputs::new();
    inputs.insert("l".into(), random_ds(&mut rng, 50, 2, 7));
    let r_ds: DataSet = (-7..=7i64)
        .map(|k| Record::from_values([Value::Int(k)]))
        .collect();
    inputs.insert("r".into(), r_ds);

    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    for dop in [1usize, 2, 4, 8] {
        let opt = Optimizer::new(PropertyMode::Sca).with_dop(dop);
        let report = opt.optimize(&plan);
        let best = &report.ranked[0];
        for batch_size in [1usize, RecordBatch::DEFAULT_SIZE] {
            for layout in [BatchLayout::RowView, BatchLayout::ColumnarNative] {
                let opts = ExecOptions {
                    batch_size,
                    validate_wire: true,
                    layout,
                    ..ExecOptions::default()
                };
                let (out, _) = execute_with(&best.plan, &best.phys, &inputs, dop, &opts).unwrap();
                if let Err(diff) = reference.bag_diff(&out) {
                    panic!(
                        "divergence at dop={dop} batch_size={batch_size} layout={layout:?}:\n{}\n\
                         diff: {diff}",
                        best.phys.render(&best.plan)
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_runtime_invariant_under_workers_and_channel_capacity() {
    // The worker-pool scheduler must be a pure transport change: for every
    // dop × batch-size point of the existing sweep, sweeping the pool size
    // and the channel bound (workers ∈ {1, 2, num_cpus} × capacity ∈
    // {1, 8}, wire validation on) must reproduce the oracle's output bag
    // AND the exact shipped-record/byte accounting of the reference
    // configuration — shipping charges per record, so backpressure and
    // scheduling interleavings must never change the totals.
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk", "lv"], 50));
    let r = p.source(SourceDef::new("r", &["rk"], 20).with_unique_key(&[0]));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default(),
        l,
        r,
    );
    let f = p.map("flt", filter_lt_zero(3, 1), CostHints::default(), j);
    let g = p.reduce("sum", &[0], sum_group(3, 1), CostHints::default(), f);
    let plan = p.finish(g).unwrap().bind().unwrap();

    let mut rng = StdRng::seed_from_u64(41);
    let mut inputs = Inputs::new();
    inputs.insert("l".into(), random_ds(&mut rng, 50, 2, 7));
    let r_ds: DataSet = (-7..=7i64)
        .map(|k| Record::from_values([Value::Int(k)]))
        .collect();
    inputs.insert("r".into(), r_ds);

    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    let num_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut workers: Vec<usize> = vec![1, 2, num_cpus];
    workers.sort_unstable();
    workers.dedup();
    for dop in [1usize, 2, 4, 8] {
        let opt = Optimizer::new(PropertyMode::Sca).with_dop(dop);
        let report = opt.optimize(&plan);
        let best = &report.ranked[0];
        // Shipping reference for this dop: the default configuration.
        let (_, ref_stats) = execute(&best.plan, &best.phys, &inputs, dop).unwrap();
        let (_, _, ref_shipped, ref_bytes, _) = ref_stats.snapshot();
        for batch_size in [1usize, RecordBatch::DEFAULT_SIZE] {
            for &w in &workers {
                for capacity in [1usize, 8] {
                    // Memory axis: unbounded vs a budget far below the
                    // working set. Spilling is operator-internal, so even
                    // the ship accounting must not move. The layout axis
                    // rides along: row-view and columnar-native runs must
                    // reproduce the SAME shipped-record/byte totals as the
                    // (columnar) reference — the layout is a pure
                    // execution knob, invisible in results and accounting.
                    for mem_budget in [None, Some(64u64)] {
                        for layout in [BatchLayout::RowView, BatchLayout::ColumnarNative] {
                            let opts = ExecOptions {
                                batch_size,
                                validate_wire: true,
                                workers: Some(w),
                                channel_capacity: capacity,
                                mem_budget,
                                layout,
                                ..ExecOptions::default()
                            };
                            let (out, stats) =
                                execute_with(&best.plan, &best.phys, &inputs, dop, &opts).unwrap();
                            let tag = format!(
                                "dop={dop} batch={batch_size} workers={w} capacity={capacity} \
                                 budget={mem_budget:?} layout={layout:?}"
                            );
                            if let Err(diff) = reference.bag_diff(&out) {
                                panic!("divergence at {tag}:\ndiff: {diff}");
                            }
                            let (_, _, shipped, bytes, _) = stats.snapshot();
                            assert_eq!(shipped, ref_shipped, "shipped records at {tag}");
                            assert_eq!(bytes, ref_bytes, "shipped bytes at {tag}");
                            let (_, _, spill_runs) = stats.spill_snapshot();
                            match mem_budget {
                                Some(_) => {
                                    assert!(spill_runs > 0, "tiny budget must spill at {tag}")
                                }
                                None => {
                                    assert_eq!(spill_runs, 0, "unbounded must not spill at {tag}")
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn combiner_axis_is_byte_identical_and_strictly_cuts_shipping() {
    // New sweep axis: the pre-ship combiner (plus the StreamAgg local
    // strategy) must be a pure transport optimization. On a
    // duplicate-heavy key distribution, every configuration of
    // dop × batch × workers × capacity × combiner must produce the
    // byte-identical result bag, the shipped-record/byte totals must be
    // invariant within one (dop, combiner) point, and switching the
    // combiner ON must strictly drop both shipped records and bytes.
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], 400));
    let g = p.reduce(
        "agg",
        &[0],
        strato::workloads::udfs::sum_group_inplace(2, 1),
        CostHints::default().with_distinct_keys(8),
        s,
    );
    let plan = p.finish(g).unwrap().bind().unwrap();
    assert!(plan.combinable_reduce(&plan.root), "precondition");

    let mut rng = StdRng::seed_from_u64(43);
    let ds: DataSet = (0..400)
        .map(|i| Record::from_values([Value::Int(i % 8), Value::Int(rng.gen_range(-100..=100i64))]))
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);

    // Oracle: logical execution — buffered grouping, never combined.
    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    let reference = reference.sorted();

    let props = PropTable::build(&plan, PropertyMode::Sca);
    for dop in [1usize, 2, 4] {
        let phys = strato::core::physical::best_physical(
            &plan,
            &props,
            &strato::core::cost::CostWeights::default(),
            dop,
        );
        assert!(phys.root.combine, "optimizer must pick the combiner");
        let mut shipped_at: [Option<(u64, u64)>; 2] = [None, None];
        // 32 bytes sits below even a two-partial StreamAgg table (~22
        // bytes per 2-int partial), so every partition that holds at
        // least two keys must shed — at any dop, batch size or worker
        // interleaving. (Pressure is checked per pushed batch: a budget
        // that a single partition's table fits under is legitimately
        // spill-free when tasks run sequentially.)
        for mem_budget in [None, Some(32u64)] {
            for combine in [false, true] {
                for batch_size in [1usize, 1024] {
                    for workers in [1usize, 2] {
                        for capacity in [1usize, 8] {
                            let opts = ExecOptions {
                                batch_size,
                                validate_wire: true,
                                workers: Some(workers),
                                channel_capacity: capacity,
                                combine,
                                mem_budget,
                                ..ExecOptions::default()
                            };
                            let (out, stats) =
                                execute_with(&plan, &phys, &inputs, dop, &opts).unwrap();
                            let tag = format!(
                                "dop={dop} combine={combine} batch={batch_size} \
                                 workers={workers} capacity={capacity} budget={mem_budget:?}"
                            );
                            assert_eq!(out.sorted(), reference, "byte-identical at {tag}");
                            let (_, _, shipped, bytes, _) = stats.snapshot();
                            let (_, _, spill_runs) = stats.spill_snapshot();
                            let (pre_in, pre_out) = stats.preagg_snapshot();
                            match mem_budget {
                                None => {
                                    // Unbounded: shipping is deterministic per
                                    // (dop, combine) point, and nothing spills.
                                    assert_eq!(spill_runs, 0, "{tag}");
                                    match shipped_at[combine as usize] {
                                        None => {
                                            shipped_at[combine as usize] = Some((shipped, bytes))
                                        }
                                        Some(prev) => assert_eq!(
                                            prev,
                                            (shipped, bytes),
                                            "ship accounting invariant at {tag}"
                                        ),
                                    }
                                    // The combiner must actually have fired: it
                                    // alone absorbs all 400 records (the final
                                    // reduce may legitimately run any local
                                    // strategy on the partials).
                                    if combine {
                                        assert!(pre_in >= 400 && pre_out < pre_in, "{tag}");
                                    }
                                }
                                Some(_) => {
                                    // Starved: the final StreamAgg sheds its
                                    // partial table to disk…
                                    assert!(spill_runs > 0, "tiny budget must spill at {tag}");
                                    if combine {
                                        // …while the combiner flushes partials
                                        // downstream instead: shipped volume may
                                        // only grow versus the unbounded
                                        // combined run (never past the
                                        // uncombined volume of the same point,
                                        // since each flush still folds).
                                        let on = shipped_at[1].expect("unbounded ran first");
                                        let off = shipped_at[0].expect("unbounded ran first");
                                        assert!(
                                            shipped >= on.0 && shipped <= off.0,
                                            "flushed shipping {shipped} outside [{}, {}] at {tag}",
                                            on.0,
                                            off.0
                                        );
                                        assert!(pre_in >= 400, "{tag}");
                                    } else {
                                        // No combiner: spilling is operator-
                                        // internal and shipping must not move.
                                        let off = shipped_at[0].expect("unbounded ran first");
                                        assert_eq!(
                                            (shipped, bytes),
                                            off,
                                            "spill must not change shipping at {tag}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let (on, off) = (shipped_at[1].unwrap(), shipped_at[0].unwrap());
        assert!(
            on.0 < off.0 && on.1 < off.1,
            "dop={dop}: combined shipping {on:?} must be strictly below {off:?}"
        );
    }
}

#[test]
fn partition_ship_stats_are_exact_on_a_known_plan() {
    // source → reduce on a fresh key: the reduce input must hash-repartition
    // every record exactly once, at any dop and batch size. Bytes follow the
    // `encoded_len` rule: widened two-int records cost 4 (header) + 2 × 9.
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], 8));
    let r = p.reduce("sum", &[0], sum_group(2, 1), CostHints::default(), s);
    let plan = p.finish(r).unwrap().bind().unwrap();
    let records: Vec<&[i64]> = vec![
        &[1, 10],
        &[1, 20],
        &[2, 5],
        &[2, -7],
        &[3, -1],
        &[7, 2],
        &[7, 3],
        &[9, 4],
    ];
    let mut inputs = Inputs::new();
    inputs.insert(
        "s".into(),
        records
            .iter()
            .map(|row| Record::from_values(row.iter().map(|&v| Value::Int(v))))
            .collect::<DataSet>(),
    );
    let props = PropTable::build(&plan, PropertyMode::Sca);
    for dop in [1usize, 2, 4, 8] {
        let phys = strato::core::physical::best_physical(
            &plan,
            &props,
            &strato::core::cost::CostWeights::default(),
            dop,
        );
        for batch_size in [1usize, RecordBatch::DEFAULT_SIZE] {
            for workers in [1usize, 3] {
                for capacity in [1usize, 8] {
                    let opts = ExecOptions {
                        batch_size,
                        validate_wire: false,
                        workers: Some(workers),
                        channel_capacity: capacity,
                        ..ExecOptions::default()
                    };
                    let (_, stats) = execute_with(&plan, &phys, &inputs, dop, &opts).unwrap();
                    let (_, _, shipped, bytes, _) = stats.snapshot();
                    let tag =
                        format!("dop={dop} batch={batch_size} workers={workers} cap={capacity}");
                    assert_eq!(shipped, 8, "{tag}");
                    assert_eq!(bytes, 8 * (4 + 2 * 9), "{tag}");
                }
            }
        }
    }
}

#[test]
fn broadcast_ship_stats_count_remote_copies_only() {
    // A join whose tiny build side the optimizer broadcasts: each of the
    // t records is shipped to the dop - 1 *other* partitions — a partition
    // does not ship to itself — and the big probe side stays put.
    let mut p = ProgramBuilder::new();
    let big = p.source(SourceDef::new("big", &["k", "v"], 1_000_000).with_bytes_per_row(64));
    let tiny = p.source(SourceDef::new("tiny", &["k2"], 10).with_bytes_per_row(8));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default().with_distinct_keys(10),
        big,
        tiny,
    );
    let plan = p.finish(j).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let dop = 3usize;
    let phys = strato::core::physical::best_physical(
        &plan,
        &props,
        &strato::core::cost::CostWeights::default(),
        dop,
    );
    assert_eq!(
        phys.root.ships[1],
        strato::core::Ship::Broadcast,
        "precondition: tiny side must broadcast:\n{}",
        phys.render(&plan)
    );
    let mut inputs = Inputs::new();
    inputs.insert(
        "big".into(),
        (0..6i64)
            .map(|k| Record::from_values([Value::Int(k), Value::Int(k * 10)]))
            .collect::<DataSet>(),
    );
    inputs.insert(
        "tiny".into(),
        (0..3i64)
            .map(|k| Record::from_values([Value::Int(k)]))
            .collect::<DataSet>(),
    );
    let (out, stats) = execute(&plan, &phys, &inputs, dop).unwrap();
    assert_eq!(out.len(), 3, "keys 0..3 match");
    let (_, _, shipped, bytes, _) = stats.snapshot();
    // 3 tiny records × (dop - 1) remote copies; each widened tiny record
    // carries one non-null int: 4 + 9 bytes.
    assert_eq!(shipped, 3 * (dop as u64 - 1));
    assert_eq!(bytes, 3 * (4 + 9) * (dop as u64 - 1));
}

#[test]
fn every_blocking_operator_spills_under_a_tiny_budget_without_changing_results() {
    // One plan per blocking-operator family — Match + Reduce, and CoGroup —
    // run unbounded and memory-starved at several dops: bags must match
    // byte for byte, the starved run must report on-disk runs for every
    // blocking operator (per-operator slots), and the unbounded run must
    // never touch disk. Null keys ride along: Match drops them at spill
    // time (they match nothing), CoGroup spills them as ordinary keys.
    let mut rng = StdRng::seed_from_u64(47);
    let with_nulls = |mut ds: DataSet, rng: &mut StdRng| {
        for _ in 0..6 {
            let mut r = Record::from_values([Value::Null, Value::Int(rng.gen_range(-5..=5))]);
            while r.arity() < ds.records()[0].arity() {
                let n = r.arity();
                r.set_field(n, Value::Int(1));
            }
            ds.push(r);
        }
        ds
    };

    // Plan A: join + key filter + reduce (Match and Reduce spill).
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["lk", "lv"], 60));
    let r = p.source(SourceDef::new("r", &["rk"], 25));
    let j = p.match_(
        "j",
        &[0],
        &[0],
        join_concat(2, 1),
        CostHints::default(),
        l,
        r,
    );
    let g = p.reduce("sum", &[0], sum_group(3, 1), CostHints::default(), j);
    let join_plan = p.finish(g).unwrap().bind().unwrap();
    let mut join_inputs = Inputs::new();
    join_inputs.insert(
        "l".into(),
        with_nulls(random_ds(&mut rng, 60, 2, 7), &mut rng),
    );
    let mut r_ds: DataSet = (-7..=7i64)
        .map(|k| Record::from_values([Value::Int(k)]))
        .collect();
    r_ds.push(Record::from_values([Value::Null]));
    join_inputs.insert("r".into(), r_ds);

    // Plan B: co-group (CoGroup spills; null keys group).
    let cg_udf = {
        let mut b = FuncBuilder::new("cg", UdfKind::CoGroup, vec![2, 1]);
        let nl = b.group_count(0);
        let nr = b.group_count(1);
        let d = b.bin(BinOp::Sub, nl, nr);
        let or = b.new_rec();
        b.set(or, 3, d);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    };
    let mut p = ProgramBuilder::new();
    let cl = p.source(SourceDef::new("cl", &["k", "v"], 50));
    let cr = p.source(SourceDef::new("cr", &["k2"], 30));
    let cg = p.cogroup("cg", &[0], &[0], cg_udf, CostHints::default(), cl, cr);
    let cg_plan = p.finish(cg).unwrap().bind().unwrap();
    let mut cg_inputs = Inputs::new();
    cg_inputs.insert(
        "cl".into(),
        with_nulls(random_ds(&mut rng, 50, 2, 6), &mut rng),
    );
    let mut cr_ds = random_ds(&mut rng, 30, 1, 6);
    cr_ds.push(Record::from_values([Value::Null]));
    cg_inputs.insert("cr".into(), cr_ds);

    for (plan, inputs, spilling_ops) in [
        (&join_plan, &join_inputs, vec!["j", "sum"]),
        (&cg_plan, &cg_inputs, vec!["cg"]),
    ] {
        let (reference, _) = execute_logical(plan, inputs).unwrap();
        let props = PropTable::build(plan, PropertyMode::Sca);
        for dop in [1usize, 3] {
            let phys = strato::core::physical::best_physical(
                plan,
                &props,
                &strato::core::cost::CostWeights::default(),
                dop,
            );
            for mem_budget in [None, Some(64u64)] {
                let opts = ExecOptions {
                    validate_wire: true,
                    mem_budget,
                    ..ExecOptions::default()
                };
                let (out, stats) = execute_with(plan, &phys, inputs, dop, &opts).unwrap();
                let tag = format!("dop={dop} budget={mem_budget:?}");
                if let Err(diff) = reference.bag_diff(&out) {
                    panic!("divergence at {tag}: {diff}");
                }
                let ops = stats.op_snapshots();
                for name in &spilling_ops {
                    let id = plan.ctx.ops.iter().position(|o| &o.name == name).unwrap();
                    match mem_budget {
                        Some(_) => assert!(
                            ops[id].spill_runs > 0 && ops[id].records_spilled > 0,
                            "{name} must spill at {tag}: {:?}",
                            ops[id]
                        ),
                        None => assert_eq!(
                            (ops[id].spill_runs, ops[id].records_spilled),
                            (0, 0),
                            "{name} must not spill at {tag}"
                        ),
                    }
                }
                let (recs, bytes, runs) = stats.spill_snapshot();
                if mem_budget.is_some() {
                    assert!(recs > 0 && bytes > 0 && runs > 0, "{tag}");
                } else {
                    assert_eq!((recs, bytes, runs), (0, 0, 0), "{tag}");
                }
            }
        }
    }
}

#[test]
fn combiner_flush_keeps_shipped_volume_accounting_balanced() {
    // ROADMAP "combiner-aware spill budget": a skewed key domain under a
    // tiny budget makes the combiner flush partials downstream repeatedly.
    // Every record the Partition ship charges must be a combiner-emitted
    // partial — force the final Reduce onto buffered HashGroup so the
    // combiner is the *only* pre-aggregation instance, then check
    // `records_shipped == records_preagg_out` exactly, at every dop, while
    // results stay byte-identical.
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], 300));
    let g = p.reduce(
        "agg",
        &[0],
        strato::workloads::udfs::sum_group_inplace(2, 1),
        CostHints::default().with_distinct_keys(4),
        s,
    );
    let plan = p.finish(g).unwrap().bind().unwrap();
    // Zipf-ish skew: one hot key, a few cold ones.
    let mut rng = StdRng::seed_from_u64(53);
    let ds: DataSet = (0..300)
        .map(|i| {
            let k = if i % 10 < 7 { 0 } else { i % 4 };
            Record::from_values([Value::Int(k), Value::Int(rng.gen_range(-9..=9i64))])
        })
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);
    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    let reference = reference.sorted();

    let props = PropTable::build(&plan, PropertyMode::Sca);
    for dop in [1usize, 2, 4] {
        let mut phys = strato::core::physical::best_physical(
            &plan,
            &props,
            &strato::core::cost::CostWeights::default(),
            dop,
        );
        assert!(phys.root.combine, "optimizer must pick the combiner");
        assert!(
            matches!(phys.root.ships[0], strato::core::Ship::Partition(_)),
            "combiner feeds a Partition ship"
        );
        phys.root.local = strato::core::LocalStrategy::HashGroup;
        for mem_budget in [None, Some(64u64)] {
            // Small batches make pressure checks frequent: the combiner
            // re-fills its table between pushes, so a starved run must
            // flush repeatedly rather than once at the end.
            let opts = ExecOptions {
                batch_size: 16,
                mem_budget,
                ..ExecOptions::default()
            };
            let (out, stats) = execute_with(&plan, &phys, &inputs, dop, &opts).unwrap();
            let tag = format!("dop={dop} budget={mem_budget:?}");
            assert_eq!(out.sorted(), reference, "byte-identical at {tag}");
            let (_, _, shipped, _, _) = stats.snapshot();
            let (pre_in, pre_out) = stats.preagg_snapshot();
            assert_eq!(pre_in, 300, "combiner absorbs every record at {tag}");
            assert_eq!(
                shipped, pre_out,
                "every shipped record is a combiner partial at {tag}"
            );
            if mem_budget.is_some() {
                assert!(
                    pre_out > 4,
                    "pressure must flush more than one partial per key at {tag}"
                );
                // The buffered final Reduce spills the flushed partials.
                assert!(stats.spill_snapshot().2 > 0, "{tag}");
            } else {
                assert!(
                    pre_out <= 4 * dop as u64,
                    "≤ one partial per key per partition at {tag}"
                );
                assert_eq!(stats.spill_snapshot(), (0, 0, 0), "{tag}");
            }
        }
    }
}

#[test]
fn map_is_never_exchanged_with_cogroup() {
    // CoGroup groups can be one-sided; a Map pushed below one input would
    // skip other-side-only groups that it does process when sitting above.
    // The optimizer must conservatively refuse the exchange — this example
    // (a constant-writing map) would actually diverge if it were applied.
    let mut p = ProgramBuilder::new();
    let l = p.source(SourceDef::new("l", &["k", "v"], 20));
    let r = p.source(SourceDef::new("r", &["k2"], 20));
    let cg_udf = {
        let mut b = FuncBuilder::new("cg", UdfKind::CoGroup, vec![2, 1]);
        // Emit a copy of the first record of whichever side is non-empty.
        let it0 = b.iter_open(0);
        let try_right = b.new_label();
        let done = b.new_label();
        let first_l = b.iter_next(it0, try_right);
        let or_l = b.copy(first_l);
        b.emit(or_l);
        b.jump(done);
        b.place(try_right);
        let it1 = b.iter_open(1);
        let first_r = b.iter_next(it1, done);
        let or_r = b.copy(first_r);
        b.emit(or_r);
        b.place(done);
        b.ret();
        b.finish().unwrap()
    };
    let cg = p.cogroup("cg", &[0], &[0], cg_udf, CostHints::default(), l, r);
    // A map writing a constant into an l-side field.
    let m = p.map(
        "const_v",
        {
            let mut b = FuncBuilder::new("cv", UdfKind::Map, vec![3]);
            let or = b.copy_input(0);
            let c = b.konst(5i64);
            b.set(or, 1, c);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        },
        CostHints::default(),
        cg,
    );
    let plan = p.finish(m).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    assert_eq!(
        enumerate_all(&plan, &props, 100).len(),
        1,
        "Map ↔ CoGroup exchange must be conservatively rejected"
    );
}
