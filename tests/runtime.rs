//! End-to-end tests of the shared engine runtime: many concurrent
//! queries on **one** worker pool and **one** machine-wide memory budget.
//!
//! The central guarantees, pinned here:
//!
//! * every concurrently submitted query is **byte-identical** to the same
//!   query run serially (standalone pool) and to the logical oracle —
//!   sharing workers and memory is invisible in results,
//! * the global pool bounds resident memory: grants are carved from one
//!   budget, so the peak resident bytes across all queries stay within
//!   the budget plus a small per-query batch slack — starvation shows up
//!   as *spilling*, never as oversubscription,
//! * per-operator statistics stay attributed to the right query even
//!   though pool workers interleave task steps from different queries.

use strato::core::cost::CostWeights;
use strato::core::physical::best_physical;
use strato::core::{PhysPlan, PropTable};
use strato::dataflow::{CostHints, Plan, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{
    execute_logical, execute_with, EngineRuntime, ExecOptions, Inputs, RuntimeOptions,
};
use strato::record::{DataSet, Record, Value};
use strato::workloads::udfs;

/// One grouped-aggregation query: `rows` (k, v) records, summed per key.
/// `seed` varies the data so concurrent queries are distinguishable.
fn grouped_sum(rows: i64, seed: i64) -> (Plan, PhysPlan, Inputs) {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], rows as u64));
    let g = p.reduce(
        "agg",
        &[0],
        udfs::sum_group_inplace(2, 1),
        CostHints::default().with_distinct_keys(7),
        s,
    );
    let plan = p.finish(g).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
    let ds: DataSet = (0..rows)
        .map(|i| {
            Record::from_values([
                Value::Int((i * (seed + 3)) % 7),
                Value::Int((i * 13 + seed) % 101 - 50),
            ])
        })
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);
    (plan, phys, inputs)
}

#[test]
fn concurrent_queries_on_a_starved_pool_match_serial_oracles() {
    const K: usize = 4;
    // A global budget far below the queries' combined working set: later
    // grants shrink toward zero, so some queries must spill everything.
    const GLOBAL_BUDGET: u64 = 24 * 1024;
    const PER_QUERY_CAP: u64 = 16 * 1024;
    // Per-query overshoot allowance: operators check the budget *after*
    // absorbing a batch, so each query may sit one small batch above its
    // grant at the instant of the check.
    const PER_QUERY_SLACK: u64 = 16 * 1024;

    let queries: Vec<_> = (0..K as i64).map(|s| grouped_sum(600, s)).collect();
    let opts = ExecOptions {
        batch_size: 32,
        mem_budget: Some(PER_QUERY_CAP),
        ..ExecOptions::default()
    };

    // Serial references: the standalone engine (its own pool, its own
    // budget) and the single-partition logical oracle.
    let references: Vec<DataSet> = queries
        .iter()
        .map(|(plan, phys, inputs)| {
            let (out, _) = execute_with(plan, phys, inputs, 2, &opts).expect("serial run");
            let (oracle, _) = execute_logical(plan, inputs).expect("oracle");
            assert_eq!(out.sorted(), oracle.sorted(), "serial matches the oracle");
            out
        })
        .collect();

    let rt = EngineRuntime::new(RuntimeOptions {
        workers: Some(3),
        mem_budget: Some(GLOBAL_BUDGET),
        ..RuntimeOptions::default()
    });

    // All K queries in flight at once on the shared pool.
    let results: Vec<(DataSet, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(plan, phys, inputs)| {
                let opts = &opts;
                let rt = &rt;
                scope.spawn(move || {
                    let (out, stats) = rt
                        .execute_with(plan, phys, inputs, 2, opts)
                        .expect("concurrent run");
                    (out, stats.totals().spill_runs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total_spill_runs = 0;
    for (i, ((out, spill_runs), reference)) in results.iter().zip(&references).enumerate() {
        assert_eq!(
            out, reference,
            "query {i}: concurrent result must be byte-identical to serial"
        );
        total_spill_runs += spill_runs;
    }
    assert!(
        total_spill_runs > 0,
        "a starved global budget must force real spills"
    );

    // The pool held the machine-wide line: every query's grant came out
    // of one budget, and resident bytes never exceeded it by more than
    // the per-query batch slack.
    let snap = rt.snapshot();
    assert!(
        snap.mem_peak_resident <= GLOBAL_BUDGET + K as u64 * PER_QUERY_SLACK,
        "peak resident {} exceeds budget {} + slack",
        snap.mem_peak_resident,
        GLOBAL_BUDGET
    );
    assert_eq!(snap.mem_granted, 0, "all grants returned");
    assert_eq!(snap.mem_resident, 0, "all operator state released");
    assert_eq!(snap.queries_finished, K as u64);
}

#[test]
fn per_op_stats_stay_attributed_to_their_query_under_interleaving() {
    // Two queries with different shapes run concurrently on a 2-worker
    // pool, so workers interleave task steps from both. Each query's
    // per-operator calls/emits must equal its own serial run exactly —
    // no cross-query bleed — and step time must land somewhere.
    let a = grouped_sum(400, 1);
    let b = {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 300));
        let m = p.map(
            "keep",
            udfs::filter_range(2, 1, -10, 1000),
            CostHints::selectivity(0.8),
            s,
        );
        let g = p.reduce(
            "agg",
            &[0],
            udfs::sum_group_inplace(2, 1),
            CostHints::default().with_distinct_keys(5),
            m,
        );
        let plan = p.finish(g).unwrap().bind().unwrap();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
        let ds: DataSet = (0..300)
            .map(|i| Record::from_values([Value::Int(i % 5), Value::Int((i * 11) % 61 - 30)]))
            .collect();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds);
        (plan, phys, inputs)
    };
    let opts = ExecOptions::default();

    // Serial per-op references.
    let serial: Vec<Vec<(u64, u64)>> = [&a, &b]
        .iter()
        .map(|(plan, phys, inputs)| {
            let (_, stats) = execute_with(plan, phys, inputs, 2, &opts).expect("serial");
            stats
                .op_snapshots()
                .iter()
                .map(|s| (s.calls, s.emits))
                .collect()
        })
        .collect();

    let rt = EngineRuntime::new(RuntimeOptions {
        workers: Some(2),
        ..RuntimeOptions::default()
    });
    for _ in 0..3 {
        let snaps: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = [&a, &b]
                .iter()
                .map(|(plan, phys, inputs)| {
                    let opts = &opts;
                    let rt = &rt;
                    scope.spawn(move || {
                        let (_, stats) = rt
                            .execute_with(plan, phys, inputs, 2, opts)
                            .expect("concurrent run");
                        stats.op_snapshots()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (q, (snap, reference)) in snaps.iter().zip(&serial).enumerate() {
            let got: Vec<(u64, u64)> = snap.iter().map(|s| (s.calls, s.emits)).collect();
            assert_eq!(
                &got, reference,
                "query {q}: per-op calls/emits must match its serial run exactly"
            );
            assert!(
                snap.iter().map(|s| s.nanos).sum::<u64>() > 0,
                "query {q}: task step time must be attributed to its own ops"
            );
        }
    }
}
