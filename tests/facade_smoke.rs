//! Workspace smoke test: the `strato` facade re-exports every subsystem
//! crate, and the quickstart pipeline (Section 3 of the paper) optimizes
//! and executes end-to-end through them.
//!
//! This is the guard CI leans on: if a facade re-export or a cross-crate
//! dependency edge breaks, this file stops compiling before any deeper
//! suite runs.

use strato::core::{enumerate_all, Optimizer, PropTable};
use strato::dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute, execute_logical, Inputs};
use strato::ir::{BinOp, FuncBuilder, Function, UdfKind};
use strato::record::{DataSet, Record, Value};
use strato::sca::analyze;
use strato::workloads::textmining;

/// A filter UDF: emit records whose field `f` is non-negative.
fn keep_nonneg(f: usize) -> Function {
    let mut b = FuncBuilder::new(format!("keep{f}"), UdfKind::Map, vec![2]);
    let v = b.get_input(0, f);
    let zero = b.konst(0i64);
    let neg = b.bin(BinOp::Lt, v, zero);
    let end = b.new_label();
    b.branch(neg, end);
    let or = b.copy_input(0);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("well-formed UDF")
}

/// An add UDF: field 0 += field 1.
fn add_fields() -> Function {
    let mut b = FuncBuilder::new("add", UdfKind::Map, vec![2]);
    let a = b.get_input(0, 0);
    let bb = b.get_input(0, 1);
    let sum = b.bin(BinOp::Add, a, bb);
    let or = b.copy_input(0);
    b.set(or, 0, sum);
    b.emit(or);
    b.ret();
    b.finish().expect("well-formed UDF")
}

fn quickstart_plan() -> strato::dataflow::Plan {
    let mut p = ProgramBuilder::new();
    let src = p.source(SourceDef::new("I", &["A", "B"], 100));
    let m1 = p.map("k0", keep_nonneg(0), CostHints::selectivity(0.5), src);
    let m2 = p.map("k1", keep_nonneg(1), CostHints::selectivity(0.5), m1);
    let m3 = p.map(
        "add",
        add_fields(),
        CostHints::selectivity(1.0).with_cpu(5.0),
        m2,
    );
    p.finish(m3).expect("linear program").bind().expect("bind")
}

fn inputs() -> Inputs {
    let data: DataSet = (-4i64..4)
        .map(|a| Record::from_values([Value::Int(a), Value::Int(-a * 3 + 1)]))
        .collect();
    let mut m = Inputs::new();
    m.insert("I".into(), data);
    m
}

#[test]
fn facade_reexports_cover_every_subsystem() {
    // record: values, records, data sets.
    let r = Record::from_values([Value::Int(1), Value::str("x")]);
    assert_eq!(r.arity(), 2);
    // ir + sca: build a UDF and analyze it.
    let f = keep_nonneg(0);
    let props = analyze(&f);
    assert_eq!(props.emits.min, 0, "a guarded UDF may emit nothing");
    // dataflow + core: plan construction, property derivation, enumeration.
    let plan = quickstart_plan();
    let table = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &table, 100);
    assert!(
        alts.len() >= 2,
        "the two filters must be reorderable, got {} orders",
        alts.len()
    );
    // workloads: scales and generators are reachable.
    let scale = textmining::TextScale { docs: 10 };
    let data = textmining::generate(scale, 1);
    assert!(!data.is_empty());
}

#[test]
fn quickstart_pipeline_optimizes_and_executes() {
    let plan = quickstart_plan();
    let inputs = inputs();

    // Logical reference run of the implemented order.
    let (reference, _) = execute_logical(&plan, &inputs).expect("logical execution");

    // Optimize; the chosen plan may not cost more than the implemented one.
    let opt = Optimizer::new(PropertyMode::Sca).with_dop(2);
    let report = opt.optimize(&plan);
    assert!(report.n_enumerated >= 2);
    let original = report
        .rank_of(&plan.canonical())
        .expect("implemented order is enumerated");
    let best = report.best();
    assert!(best.cost <= report.ranked[original].cost);

    // The optimized plan executes — logically and physically — to the same
    // output bag as the implemented order.
    let (logical_best, _) = execute_logical(&best.plan, &inputs).expect("logical execution");
    assert_eq!(reference, logical_best, "reordering changed the result");
    let (physical_best, _) =
        execute(&best.plan, &best.phys, &inputs, 2).expect("physical execution");
    assert_eq!(reference, physical_best, "parallel engine diverged");
}
