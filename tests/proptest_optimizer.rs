//! Property tests for enumeration and end-to-end optimization over random
//! Map-chain programs:
//!
//! * Algorithm 1 (faithful port) and the closure enumerator agree,
//! * every enumerated order produces the same output bag (the paper's
//!   safety property, Section 5),
//! * the enumerated set is closed under the move relation,
//! * the optimizer's chosen plan never costs more than the original.

use proptest::prelude::*;
use std::collections::BTreeSet;
use strato::core::{enumerate_algorithm1, enumerate_all, neighbors, Optimizer, PropTable};
use strato::dataflow::{CostHints, Plan, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute_logical, Inputs};
use strato::ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};
use strato::record::{DataSet, Record, Value};

const WIDTH: usize = 4;

/// One operator of a random chain.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// Filter on `field < 0`.
    Filter(usize),
    /// `field := |field|`.
    Abs(usize),
    /// `field := field + k`.
    AddConst(usize, i64),
    /// Duplicate every record.
    Duplicate,
}

fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (0..WIDTH).prop_map(OpKind::Filter),
        (0..WIDTH).prop_map(OpKind::Abs),
        ((0..WIDTH), -3i64..4).prop_map(|(f, k)| OpKind::AddConst(f, k)),
        Just(OpKind::Duplicate),
    ]
}

fn udf_for(kind: OpKind) -> Function {
    match kind {
        OpKind::Filter(f) => {
            let mut b = FuncBuilder::new(format!("flt{f}"), UdfKind::Map, vec![WIDTH]);
            let v = b.get_input(0, f);
            let z = b.konst(0i64);
            let c = b.bin(BinOp::Lt, v, z);
            let end = b.new_label();
            b.branch(c, end);
            let or = b.copy_input(0);
            b.emit(or);
            b.place(end);
            b.ret();
            b.finish().unwrap()
        }
        OpKind::Abs(f) => {
            let mut b = FuncBuilder::new(format!("abs{f}"), UdfKind::Map, vec![WIDTH]);
            let v = b.get_input(0, f);
            let or = b.copy_input(0);
            let a = b.un(UnOp::Abs, v);
            b.set(or, f, a);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        }
        OpKind::AddConst(f, k) => {
            let mut b = FuncBuilder::new(format!("add{f}"), UdfKind::Map, vec![WIDTH]);
            let v = b.get_input(0, f);
            let c = b.konst(k);
            let s = b.bin(BinOp::Add, v, c);
            let or = b.copy_input(0);
            b.set(or, f, s);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        }
        OpKind::Duplicate => {
            let mut b = FuncBuilder::new("dup", UdfKind::Map, vec![WIDTH]);
            let or = b.copy_input(0);
            b.emit(or);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        }
    }
}

fn chain_plan(ops: &[OpKind]) -> Plan {
    let mut p = ProgramBuilder::new();
    let mut node = p.source(SourceDef::new("s", &["a", "b", "c", "d"], 100));
    for (i, &k) in ops.iter().enumerate() {
        let sel = match k {
            OpKind::Filter(_) => 0.5,
            OpKind::Duplicate => 2.0,
            _ => 1.0,
        };
        node = p.map(
            &format!("op{i}"),
            udf_for(k),
            CostHints::selectivity(sel).with_cpu(1.0 + i as f64),
            node,
        );
    }
    p.finish(node).unwrap().bind().unwrap()
}

fn random_inputs(rows: &[Vec<i64>]) -> Inputs {
    let ds: DataSet = rows
        .iter()
        .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
        .collect();
    let mut m = Inputs::new();
    m.insert("s".into(), ds);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn algorithm1_agrees_with_closure(ops in prop::collection::vec(arb_op(), 1..5)) {
        let plan = chain_plan(&ops);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let a1: BTreeSet<String> = enumerate_algorithm1(&plan, &props)
            .expect("chains are linear")
            .iter()
            .map(|p| p.canonical())
            .collect();
        let cl: BTreeSet<String> = enumerate_all(&plan, &props, 10_000)
            .iter()
            .map(|p| p.canonical())
            .collect();
        prop_assert_eq!(a1, cl);
    }

    #[test]
    fn every_order_is_equivalent(
        ops in prop::collection::vec(arb_op(), 1..5),
        rows in prop::collection::vec(prop::collection::vec(-9i64..10, WIDTH), 1..30),
    ) {
        let plan = chain_plan(&ops);
        let inputs = random_inputs(&rows);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let (reference, _) = execute_logical(&plan, &inputs).unwrap();
        for alt in enumerate_all(&plan, &props, 10_000) {
            let (out, _) = execute_logical(&alt, &inputs).unwrap();
            if let Err(d) = reference.bag_diff(&out) {
                return Err(TestCaseError::fail(format!(
                    "orders diverge: {d}\noriginal:\n{}\nalternative:\n{}",
                    plan.render(),
                    alt.render()
                )));
            }
        }
    }

    #[test]
    fn enumerated_set_is_closed_under_moves(ops in prop::collection::vec(arb_op(), 1..5)) {
        let plan = chain_plan(&ops);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let all = enumerate_all(&plan, &props, 10_000);
        let set: BTreeSet<String> = all.iter().map(|p| p.canonical()).collect();
        for p in &all {
            for n in neighbors(p, &props) {
                prop_assert!(
                    set.contains(&n.canonical()),
                    "move escapes the enumerated set"
                );
            }
        }
    }

    #[test]
    fn optimizer_never_worsens_the_plan(ops in prop::collection::vec(arb_op(), 1..5)) {
        let plan = chain_plan(&ops);
        let opt = Optimizer::new(PropertyMode::Sca);
        let report = opt.optimize(&plan);
        let original_rank = report.rank_of(&plan.canonical()).expect("original enumerated");
        prop_assert!(report.best().cost <= report.ranked[original_rank].cost);
        // Ranking is sorted ascending.
        for w in report.ranked.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
        }
    }
}
