//! Property tests for the out-of-core spill subsystem: merging external
//! sorted runs with a loser tree is **exactly** an in-memory sort, and a
//! memory-starved execution is byte-identical to an unbounded one.

use proptest::prelude::*;
use strato::core::cost::CostWeights;
use strato::core::physical::best_physical;
use strato::core::PropTable;
use strato::dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::spill::{merge, MemoryGovernor};
use strato::exec::{execute_logical, execute_with, ExecOptions, Inputs};
use strato::record::{DataSet, Record, Value};
use strato::workloads::udfs;

/// The canonical comparator of the tests: key field 0 first (with null
/// smallest, via `Value`'s total order), whole record as tie-break —
/// the same `(key, record)` shape the operators sort runs with.
fn by_key(a: &Record, b: &Record) -> std::cmp::Ordering {
    a.field(0).cmp(b.field(0)).then_with(|| a.cmp(b))
}

fn record(k: i64, v: i64) -> Record {
    // k == 0 becomes a null key: the merge must order nulls identically
    // to the in-memory sort.
    let key = if k == 0 { Value::Null } else { Value::Int(k) };
    Record::from_values([key, Value::Int(v)])
}

proptest! {
    #[test]
    fn external_run_merge_equals_in_memory_sort(
        chunks in prop::collection::vec(
            prop::collection::vec((0i64..8, -100i64..100), 0..40),
            0..9,
        ),
        tail in prop::collection::vec((0i64..8, -100i64..100), 0..20),
        fan_in in 2usize..5,
    ) {
        let gov = MemoryGovernor::with_budget(Some(1));
        // Each chunk becomes one sorted on-disk run.
        let mut runs = Vec::new();
        let mut all: Vec<Record> = Vec::new();
        for chunk in &chunks {
            let mut recs: Vec<Record> = chunk.iter().map(|&(k, v)| record(k, v)).collect();
            all.extend(recs.iter().cloned());
            recs.sort_by(by_key);
            runs.push(gov.write_sorted_run(&recs).unwrap());
        }
        // Plus an in-memory tail, as operators merge their unspilled rest.
        let mut mem: Vec<Record> = tail.iter().map(|&(k, v)| record(k, v)).collect();
        all.extend(mem.iter().cloned());
        mem.sort_by(by_key);

        // A deliberately small fan-in forces multi-pass run compaction.
        let merged: Vec<Record> =
            merge::merge_runs_with_fan_in(&gov, runs, mem, by_key, fan_in)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();

        all.sort_by(by_key);
        prop_assert_eq!(merged, all);
    }

    #[test]
    fn memory_starved_execution_is_byte_identical(
        rows in prop::collection::vec((0i64..6, -50i64..50), 1..60),
        dop in 1usize..5,
        budget in prop::option::of(8u64..200),
    ) {
        // A combinable grouped aggregate: under an arbitrary (often
        // absurdly tiny) budget the Reduce/StreamAgg spill machinery and
        // the combiner's flush-on-pressure path must be invisible in the
        // output.
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let g = p.reduce(
            "agg",
            &[0],
            udfs::sum_group_inplace(2, 1),
            CostHints::default().with_distinct_keys(6),
            s,
        );
        let plan = p.finish(g).unwrap().bind().unwrap();

        let ds: DataSet = rows
            .iter()
            .map(|&(k, v)| Record::from_values([Value::Int(k), Value::Int(v)]))
            .collect();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds);

        let (oracle, _) = execute_logical(&plan, &inputs).unwrap();
        let oracle = oracle.sorted();

        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), dop);
        let opts = ExecOptions {
            mem_budget: budget,
            ..ExecOptions::default()
        };
        let (out, _) = execute_with(&plan, &phys, &inputs, dop, &opts).unwrap();
        prop_assert_eq!(out.sorted(), oracle);
    }
}
