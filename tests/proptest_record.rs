//! Property tests for the record data model: bag-equality laws, attribute
//! set algebra, and wire-format round-trips.

use proptest::prelude::*;
use strato::record::{wire, AttrId, AttrSet, DataSet, Record, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ⟨⟩]{0,12}".prop_map(Value::str),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Record::new)
}

fn arb_dataset() -> impl Strategy<Value = DataSet> {
    prop::collection::vec(arb_record(), 0..20).prop_map(DataSet::from_records)
}

fn arb_attrset() -> impl Strategy<Value = AttrSet> {
    prop::collection::btree_set(0u32..200, 0..20).prop_map(|s| s.into_iter().map(AttrId).collect())
}

proptest! {
    #[test]
    fn bag_equality_is_permutation_invariant(ds in arb_dataset(), seed in any::<u64>()) {
        let mut shuffled = ds.records().to_vec();
        // Deterministic pseudo-shuffle.
        let n = shuffled.len();
        if n > 1 {
            for i in 0..n {
                let j = (seed as usize).wrapping_mul(i + 1) % n;
                shuffled.swap(i, j);
            }
        }
        prop_assert_eq!(&ds, &DataSet::from_records(shuffled));
    }

    #[test]
    fn bag_equality_detects_extra_record(ds in arb_dataset(), extra in arb_record()) {
        let mut bigger = ds.records().to_vec();
        bigger.push(extra);
        prop_assert_ne!(&ds, &DataSet::from_records(bigger));
    }

    #[test]
    fn sorted_is_a_canonical_form(ds in arb_dataset()) {
        let a = ds.sorted();
        let rev: DataSet = ds.records().iter().rev().cloned().collect();
        prop_assert_eq!(a, rev.sorted());
    }

    #[test]
    fn wire_roundtrip_preserves_records(r in arb_record()) {
        let bytes = wire::encode_to_bytes(&r);
        let back = wire::decode_record(&mut bytes.clone()).unwrap();
        prop_assert_eq!(r, back);
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Eq agrees with cmp.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn attrset_union_laws(a in arb_attrset(), b in arb_attrset(), x in 0u32..200) {
        let u = a.union(&b);
        let id = AttrId(x);
        prop_assert_eq!(u.contains(id), a.contains(id) || b.contains(id));
        // Commutativity & idempotence.
        prop_assert_eq!(&u, &b.union(&a));
        prop_assert_eq!(&u.union(&a), &u);
        prop_assert_eq!(u.len(), u.iter().count());
    }

    #[test]
    fn attrset_intersection_difference_laws(a in arb_attrset(), b in arb_attrset(), x in 0u32..200) {
        let i = a.intersection(&b);
        let d = a.difference(&b);
        let id = AttrId(x);
        prop_assert_eq!(i.contains(id), a.contains(id) && b.contains(id));
        prop_assert_eq!(d.contains(id), a.contains(id) && !b.contains(id));
        // a = (a ∩ b) ∪ (a \ b)
        prop_assert_eq!(&i.union(&d), &a);
        // disjointness and subset coherence
        prop_assert_eq!(a.is_disjoint(&b), i.is_empty());
        prop_assert!(i.is_subset(&a) && i.is_subset(&b));
        prop_assert!(d.is_subset(&a) && d.is_disjoint(&b));
    }

    #[test]
    fn record_merge_absent_prefers_left(a in arb_record(), b in arb_record()) {
        let mut m = a.clone();
        m.merge_absent(&b);
        for i in 0..m.arity() {
            if !a.field(i).is_null() {
                prop_assert_eq!(m.field(i), a.field(i));
            } else {
                prop_assert_eq!(m.field(i), b.field(i));
            }
        }
    }
}
