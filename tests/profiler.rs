//! Integration tests for the runtime profiler — the paper's "obtained by
//! runtime profiling" hint source (Section 7.1) and its Section 9 future
//! work (black-box selectivity and cost estimation).

use strato::core::Optimizer;
use strato::dataflow::PropertyMode;
use strato::exec::{profile, profile_hints, Inputs};
use strato::workloads::{clickstream, textmining, tpch};

#[test]
fn profiled_selectivities_track_the_generators() {
    let scale = textmining::TextScale { docs: 600 };
    let plan = textmining::plan(scale);
    let inputs: Inputs = textmining::generate(scale, 5).into_iter().collect();
    let profiles = profile(&plan, &inputs).unwrap();
    for c in textmining::EXTRACTORS {
        let id = plan.ctx.ops.iter().position(|o| o.name == c.name).unwrap();
        let sel = profiles[id].selectivity();
        assert!(
            (sel - c.selectivity).abs() < 0.12,
            "{}: profiled {sel:.2}, nominal {:.2}",
            c.name,
            c.selectivity
        );
    }
}

#[test]
fn profiled_distinct_keys_match_tpch() {
    let scale = tpch::TpchScale::tiny();
    let plan = tpch::q15_plan(scale);
    let inputs: Inputs = tpch::generate(scale, 5).into_iter().collect();
    let profiles = profile(&plan, &inputs).unwrap();
    let agg = plan
        .ctx
        .ops
        .iter()
        .position(|o| o.name == "agg_revenue")
        .unwrap();
    assert!(profiles[agg].distinct_keys <= scale.suppliers() as u64);
    assert!(profiles[agg].distinct_keys > 0);
}

#[test]
fn profiled_hints_reoptimize_clickstream_to_a_near_best_plan() {
    let scale = clickstream::ClickScale::small();
    let plan = clickstream::plan(scale);
    let inputs: Inputs = clickstream::generate(scale, 5).into_iter().collect();
    let hints = profile_hints(&plan, &inputs, 4, 50.0).unwrap();
    assert_eq!(hints.len(), plan.ctx.ops.len());
    let reh = plan.with_hints(hints);
    let opt = Optimizer::new(PropertyMode::Manual);
    let from_profile = opt.best(&reh);
    // Judge the profile-driven choice under the curated (ground-truth)
    // model: of the 4 orders it must land in the top half. (Profiled CPU
    // includes interpreter overhead and the sample shifts join sizes, so
    // exact agreement with curated hints is not guaranteed.)
    let truth = opt.optimize(&plan);
    let rank = truth
        .rank_of(&from_profile.plan.canonical())
        .expect("same plan space");
    assert!(
        rank < 2,
        "profile-driven choice ranks {rank} of {} under the curated model",
        truth.n_enumerated
    );
}

#[test]
fn profiled_hints_reoptimize_textmining_to_a_near_best_plan() {
    let scale = textmining::TextScale { docs: 800 };
    let plan = textmining::plan(scale);
    let inputs: Inputs = textmining::generate(scale, 9).into_iter().collect();
    let hints = profile_hints(&plan, &inputs, 4, 50.0).unwrap();
    let reh = plan.with_hints(hints);
    let opt = Optimizer::new(PropertyMode::Sca);
    let chosen = opt.best(&reh);
    // Evaluate the chosen order under the *curated* (ground-truth) cost
    // model: it must rank in the top quarter of the 24 orders.
    let truth = opt.optimize(&plan);
    let rank = truth
        .rank_of(&chosen.plan.canonical())
        .expect("same plan space");
    assert!(
        rank < 6,
        "profile-driven choice ranks {rank} of {} under the true model",
        truth.n_enumerated
    );
}
