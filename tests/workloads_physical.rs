//! Physical execution equivalence over the evaluation workloads: every
//! enumerated order, executed with its cost-chosen shipping and local
//! strategies on a multi-partition engine, must reproduce the logical
//! oracle's output bag. This closes the loop between Sections 4–6 (logical
//! safety) and Section 7's engine (physical strategies).

use strato::core::Optimizer;
use strato::dataflow::PropertyMode;
use strato::exec::{execute, execute_logical, Inputs};
use strato::workloads::{clickstream, textmining, tpch};

fn check_all_physical(plan: &strato::dataflow::Plan, inputs: &Inputs, mode: PropertyMode) {
    let (reference, _) = execute_logical(plan, inputs).expect("logical oracle");
    let report = Optimizer::new(mode).with_dop(3).optimize(plan);
    for ranked in &report.ranked {
        let (out, _) = execute(&ranked.plan, &ranked.phys, inputs, 3).expect("physical run");
        if let Err(d) = reference.bag_diff(&out) {
            panic!(
                "physical execution diverged for:\n{}\n{}\ndiff: {d}",
                ranked.plan.render(),
                ranked.phys.render(&ranked.plan)
            );
        }
    }
}

#[test]
fn clickstream_all_orders_physical() {
    let scale = clickstream::ClickScale::tiny();
    let plan = clickstream::plan(scale);
    let inputs: Inputs = clickstream::generate(scale, 77).into_iter().collect();
    check_all_physical(&plan, &inputs, PropertyMode::Manual);
}

#[test]
fn q15_all_orders_physical() {
    let scale = tpch::TpchScale::tiny();
    let plan = tpch::q15_plan(scale);
    let inputs: Inputs = tpch::generate(scale, 77).into_iter().collect();
    check_all_physical(&plan, &inputs, PropertyMode::Sca);
}

#[test]
fn textmining_all_orders_physical() {
    let scale = textmining::TextScale { docs: 80 };
    let plan = textmining::plan(scale);
    let inputs: Inputs = textmining::generate(scale, 77).into_iter().collect();
    check_all_physical(&plan, &inputs, PropertyMode::Sca);
}

#[test]
fn q7_sampled_orders_physical() {
    // The full 2860-plan space is too slow for physical execution of every
    // alternative in a unit test; check a deterministic sample of 15.
    let scale = tpch::TpchScale::tiny();
    let plan = tpch::q7_plan(scale);
    let inputs: Inputs = tpch::generate(scale, 77).into_iter().collect();
    let (reference, _) = execute_logical(&plan, &inputs).unwrap();
    let report = Optimizer::new(PropertyMode::Sca)
        .with_dop(3)
        .optimize(&plan);
    let step = (report.ranked.len() / 15).max(1);
    for ranked in report.ranked.iter().step_by(step) {
        let (out, _) = execute(&ranked.plan, &ranked.phys, &inputs, 3).unwrap();
        if let Err(d) = reference.bag_diff(&out) {
            panic!(
                "physical execution diverged for:\n{}\ndiff: {d}",
                ranked.plan.render()
            );
        }
    }
}
