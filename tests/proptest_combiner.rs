//! Property test for the combiner path: for combinable (decomposable)
//! reduce UDFs, **streaming pre-aggregation equals the buffered Reduce**
//! on arbitrary inputs — with and without the pre-ship combiner stage, at
//! any degree of parallelism — byte for byte against the logical oracle
//! (which always executes the buffered, uncombined grouping).

use proptest::prelude::*;
use strato::core::cost::CostWeights;
use strato::core::physical::best_physical;
use strato::core::PropTable;
use strato::dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute_logical, execute_with, ExecOptions, Inputs};
use strato::record::{DataSet, Record, Value};
use strato::workloads::udfs;

proptest! {
    #[test]
    fn streaming_preagg_equals_buffered_reduce(
        rows in prop::collection::vec((0i64..6, -50i64..50), 1..60),
        dop in 1usize..5,
        use_sum in any::<bool>(),
    ) {
        // In-place Σ or min — both proven combinable by SCA (min with a
        // non-identity constant init, which the pure partial fold makes
        // sound).
        let udf = if use_sum {
            udfs::sum_group_inplace(2, 1)
        } else {
            udfs::min_group_inplace(2, 1)
        };
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let g = p.reduce("agg", &[0], udf, CostHints::default().with_distinct_keys(6), s);
        let plan = p.finish(g).unwrap().bind().unwrap();
        prop_assert!(plan.combinable_reduce(&plan.root));

        let ds: DataSet = rows
            .iter()
            .map(|&(k, v)| Record::from_values([Value::Int(k), Value::Int(v)]))
            .collect();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds);

        // Oracle: buffered hash grouping, no combiner, dop 1.
        let (oracle, _) = execute_logical(&plan, &inputs).unwrap();
        let oracle = oracle.sorted();

        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), dop);
        for combine in [true, false] {
            let opts = ExecOptions {
                combine,
                ..ExecOptions::default()
            };
            let (out, _) = execute_with(&plan, &phys, &inputs, dop, &opts).unwrap();
            prop_assert_eq!(out.sorted(), oracle.clone());
        }
    }
}
