//! Property tests for the columnar batch layout: row ↔ columnar
//! round-trip identity and agreement of the vectorized key kernels
//! (`key_hash_into` / `key_cmp_rows`) with the row-oriented reference
//! path (`FxHasher` over `Value::hash`, field-wise `Value::cmp`).

use proptest::prelude::*;
use std::hash::{Hash, Hasher};
use strato::record::hash::FxHasher;
use strato::record::{BatchBuilder, ColumnBatch, Record, RecordBatch, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ⟨⟩]{0,12}".prop_map(Value::str),
    ]
}

/// A batch-shaped input: a width and rows already normalized to that
/// width (columnar batches hold uniform-arity rows; ragged records are
/// null-padded by the scan path before they ever reach a column store).
fn arb_rows() -> impl Strategy<Value = (usize, Vec<Record>)> {
    (
        0usize..5,
        prop::collection::vec(prop::collection::vec(arb_value(), 0..8), 0..24),
    )
        .prop_map(|(width, rows)| {
            let rows = rows
                .into_iter()
                .map(|mut vals| {
                    vals.truncate(width);
                    vals.resize(width, Value::Null);
                    Record::new(vals)
                })
                .collect();
            (width, rows)
        })
}

/// Key column indices clamped into `0..width` (empty when `width == 0`).
fn norm_keys(raw: &[usize], width: usize) -> Vec<usize> {
    if width == 0 {
        Vec::new()
    } else {
        raw.iter().map(|k| k % width).collect()
    }
}

fn build(width: usize, rows: &[Record]) -> ColumnBatch {
    let mut b = BatchBuilder::new(width);
    for r in rows {
        b.push_record(r);
    }
    b.finish()
}

/// The row-oriented reference hash: `FxHasher` fed each key field's
/// `Value::hash`, exactly as the exec operators hash row-major records.
fn row_key_hash(r: &Record, keys: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &k in keys {
        r.field(k).hash(&mut h);
    }
    h.finish()
}

proptest! {
    #[test]
    fn roundtrip_preserves_rows((width, rows) in arb_rows()) {
        let cb = build(width, &rows);
        prop_assert_eq!(cb.len(), rows.len());
        prop_assert_eq!(cb.width(), width);
        prop_assert_eq!(cb.to_records(), rows.clone());
        // Per-row materialization and cell access agree too.
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(&cb.row_record(i), r);
            prop_assert!(cb.row_eq_record(i, r));
            for c in 0..width {
                prop_assert_eq!(&cb.value_at(i, c), r.field(c));
            }
        }
    }

    #[test]
    fn batches_are_logically_equal_across_layouts((width, rows) in arb_rows()) {
        let col = RecordBatch::from_columns(build(width, &rows));
        let row = RecordBatch::from_records(rows);
        prop_assert_eq!(&col, &row);
        prop_assert_eq!(&row, &col);
        prop_assert_eq!(col.to_records(), row.to_records());
    }

    #[test]
    fn key_hash_agrees_with_row_hasher(
        (width, rows) in arb_rows(),
        raw_keys in prop::collection::vec(0usize..8, 0..4),
    ) {
        let keys = norm_keys(&raw_keys, width);
        let cb = build(width, &rows);
        let mut hashes = Vec::new();
        cb.key_hash_into(&keys, &mut hashes);
        prop_assert_eq!(hashes.len(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            let want = row_key_hash(r, &keys);
            prop_assert_eq!(hashes[i], want);
            prop_assert_eq!(cb.key_hash_row(i, &keys), want);
        }
    }

    #[test]
    fn key_cmp_agrees_with_value_cmp(
        (width, rows) in arb_rows(),
        raw_keys in prop::collection::vec(0usize..8, 0..4),
        pick in any::<u64>(),
    ) {
        prop_assume!(!rows.is_empty());
        let keys = norm_keys(&raw_keys, width);
        let cb = build(width, &rows);
        let a = (pick as usize) % rows.len();
        let b = (pick >> 32) as usize % rows.len();
        let want = keys
            .iter()
            .map(|&k| rows[a].field(k).cmp(rows[b].field(k)))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal);
        prop_assert_eq!(cb.key_cmp_rows(a, b, &keys), want);
        prop_assert_eq!(cb.key_cmp_record(a, &rows[b], &keys), want);
        let has_null = keys.iter().any(|&k| rows[a].field(k).is_null());
        prop_assert_eq!(cb.key_has_null(a, &keys), has_null);
    }

    #[test]
    fn encoded_len_matches_row_sum((width, rows) in arb_rows()) {
        let cb = build(width, &rows);
        let want: usize = rows.iter().map(Record::encoded_len).sum();
        prop_assert_eq!(cb.encoded_len(), want);
        let mut lens = Vec::new();
        cb.row_encoded_lens(&mut lens);
        prop_assert_eq!(lens.len(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(lens[i], r.encoded_len());
        }
    }

    #[test]
    fn null_mask_density_counts_nulls((width, rows) in arb_rows()) {
        let cb = build(width, &rows);
        let nulls: usize = rows
            .iter()
            .map(|r| r.fields().iter().filter(|v| v.is_null()).count())
            .sum();
        prop_assert_eq!(cb.null_cells(), nulls);
        prop_assert_eq!(cb.total_cells(), rows.len() * width);
    }
}
