//! Property tests for the static code analysis: **safety through
//! conservatism** (Section 5 of the paper) over randomly generated UDFs.
//!
//! A random-but-well-formed Map UDF is built from a structured recipe
//! (reads, arithmetic, an optional guard, a constructed output record with
//! explicit sets/projections, one or two emits). For every such UDF:
//!
//! * the semantic read/write sets estimated by black-box probing must be
//!   **subsets** of the SCA-derived sets (Definitions 2–3),
//! * observed emit counts must lie within the SCA emit bounds,
//! * the interpreter must be total (no panics, no errors) on arbitrary
//!   integer records.

use proptest::prelude::*;
use strato::ir::interp::{Interp, Invocation, Layout};
use strato::ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};
use strato::record::{Record, Value};
use strato::sca::probe::{probe_emit_counts, probe_read_set, probe_write_set, ProbeConfig};
use strato::sca::{analyze, LocalProps};

const WIDTH: usize = 4;

/// A structured, always-verifiable UDF recipe.
#[derive(Debug, Clone)]
struct Recipe {
    /// Fields loaded into values (may be unused).
    reads: Vec<usize>,
    /// Binary combinations of previously available values.
    computes: Vec<(u8, usize, usize)>,
    /// Filter on value index (None = no guard).
    guard: Option<usize>,
    /// Output starts as a copy of the input (true) or empty (false).
    copy_output: bool,
    /// `setField(or, field, value idx)`.
    sets: Vec<(usize, usize)>,
    /// Explicit projections.
    nulls: Vec<usize>,
    /// Emit the record twice?
    double_emit: bool,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(0..WIDTH, 1..4),
        prop::collection::vec((0u8..5, 0..6usize, 0..6usize), 0..3),
        prop::option::of(0..8usize),
        any::<bool>(),
        prop::collection::vec((0..WIDTH + 2, 0..8usize), 0..3),
        prop::collection::vec(0..WIDTH, 0..2),
        any::<bool>(),
    )
        .prop_map(
            |(reads, computes, guard, copy_output, sets, nulls, double_emit)| Recipe {
                reads,
                computes,
                guard,
                copy_output,
                sets,
                nulls,
                double_emit,
            },
        )
}

fn build(recipe: &Recipe) -> Function {
    let mut b = FuncBuilder::new("rand", UdfKind::Map, vec![WIDTH]);
    let mut vals = Vec::new();
    for &f in &recipe.reads {
        vals.push(b.get_input(0, f));
    }
    vals.push(b.konst(3i64));
    vals.push(b.konst(-1i64));
    for &(op, i, j) in &recipe.computes {
        let op = match op {
            0 => BinOp::Add,
            1 => BinOp::Mul,
            2 => BinOp::Lt,
            3 => BinOp::Eq,
            _ => BinOp::Max,
        };
        let a = vals[i % vals.len()];
        let c = vals[j % vals.len()];
        vals.push(b.bin(op, a, c));
    }
    let end = b.new_label();
    if let Some(g) = recipe.guard {
        let v = vals[g % vals.len()];
        let cond = b.un(UnOp::Not, v);
        b.branch(cond, end);
    }
    let or = if recipe.copy_output {
        b.copy_input(0)
    } else {
        b.new_rec()
    };
    for &(field, v) in &recipe.sets {
        let v = vals[v % vals.len()];
        b.set(or, field, v);
    }
    for &f in &recipe.nulls {
        b.set_null(or, f);
    }
    b.emit(or);
    if recipe.double_emit {
        b.emit(or);
    }
    b.place(end);
    b.ret();
    b.finish().expect("recipes are always verifiable")
}

fn props_write_ok(props: &LocalProps, w: usize) -> bool {
    props.written_base.contains(&w) || props.added.contains(&w) || props.dynamic_write
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sca_is_conservative_on_random_udfs(recipe in arb_recipe()) {
        let f = build(&recipe);
        let props = analyze(&f);
        let cfg = ProbeConfig { samples: 24, ..ProbeConfig::default() };

        // Semantic reads ⊆ SCA reads.
        for (inp, field) in probe_read_set(&f, &cfg) {
            prop_assert!(
                props.reads.contains(&(inp, field))
                    || props.dynamic_read_inputs.contains(&inp),
                "probe found read {inp}/{field} missed by SCA:\n{f}\n{props}"
            );
        }
        // Semantic writes ⊆ SCA writes.
        for w in probe_write_set(&f, &cfg) {
            prop_assert!(
                props_write_ok(&props, w),
                "probe found write {w} missed by SCA:\n{f}\n{props}"
            );
        }
        // Emit counts within bounds.
        let (lo, hi) = probe_emit_counts(&f, &cfg);
        prop_assert!(lo >= props.emits.min, "min emits violated:\n{f}\n{props}");
        if let Some(max) = props.emits.max {
            prop_assert!(hi <= max, "max emits violated:\n{f}\n{props}");
        }
    }

    #[test]
    fn interpreter_is_total_on_random_inputs(
        recipe in arb_recipe(),
        fields in prop::collection::vec(any::<i64>(), WIDTH),
    ) {
        let f = build(&recipe);
        let layout = Layout::local(&f);
        let rec = Record::from_values(fields.into_iter().map(Value::Int));
        let mut out = Vec::new();
        let stats = Interp::default()
            .run(&f, Invocation::Record(&rec), &layout, &mut out)
            .expect("interpreter must be total");
        prop_assert_eq!(stats.emits as usize, out.len());
        // Emitted records are always full global width.
        for r in &out {
            prop_assert_eq!(r.arity(), layout.width);
        }
    }

    #[test]
    fn control_reads_are_reads(recipe in arb_recipe()) {
        let f = build(&recipe);
        let props = analyze(&f);
        for cr in &props.control_reads {
            prop_assert!(props.reads.contains(cr), "control read not in read set");
        }
    }

    #[test]
    fn guarded_udfs_never_claim_exactly_one(recipe in arb_recipe()) {
        // A UDF with a guard can emit zero records; SCA must not report
        // exactly-one semantics (which would wrongly enable KGP case 1).
        prop_assume!(recipe.guard.is_some());
        let f = build(&recipe);
        let props = analyze(&f);
        prop_assert!(props.emits.min == 0, "guard ⇒ min emits 0:\n{f}\n{props}");
    }
}
