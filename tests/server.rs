//! End-to-end tests of the query service: a real listener on an
//! ephemeral port, real HTTP round trips.
//!
//! The central guarantee: a dataflow submitted over the wire produces
//! **byte-identical** result rows to the same flow compiled and executed
//! in process, and the `/metrics` scrape agrees with the in-process
//! execution statistics down to per-operator counters.

use strato::core::Optimizer;
use strato::dataflow::spec::{
    CmpOp, FlowSpec, FoldOp, MapUdf, NodeSpec, OpSpec, ReduceUdf, SourceSpec,
};
use strato::dataflow::PropertyMode;
use strato::exec::{execute_with, ExecOptions, Inputs};
use strato::record::{DataSet, Record, Value};
use strato::server::decode::value_to_json;
use strato::server::json::Json;
use strato::server::{client, Server, ServerConfig};

/// Boots a background server with the given admission limits.
fn boot(max_concurrent: usize, queue_depth: usize) -> strato::server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_concurrent,
        queue_depth,
        ..ServerConfig::default()
    };
    Server::bind(&config).expect("bind").spawn().expect("spawn")
}

/// The first sample of `name` in a Prometheus scrape (`name` includes any
/// label set, verbatim).
fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Deterministic (k, v) rows with some negative v to give the filter work.
fn sample_rows(n: i64) -> DataSet {
    (0..n)
        .map(|i| Record::from_values(vec![Value::Int(i % 10), Value::Int((i * 7) % 50 - 10)]))
        .collect()
}

/// JSON text of a data set's rows in canonical sorted order — the exact
/// serialization the server streams back.
fn rows_json(out: &DataSet) -> String {
    Json::Arr(
        out.sorted()
            .iter()
            .map(|r| Json::Arr(r.fields().iter().map(value_to_json).collect()))
            .collect(),
    )
    .to_string()
}

#[test]
fn served_query_matches_direct_execution_byte_for_byte() {
    let handle = boot(2, 4);
    let data = sample_rows(200);

    // The same grouped aggregation, described twice: as the wire JSON and
    // as the in-process FlowSpec. The inline inputs preserve the original
    // row order — batch boundaries (and so e.g. combiner ship counts)
    // depend on it.
    let inline_rows = Json::Arr(
        data.iter()
            .map(|r| Json::Arr(r.fields().iter().map(value_to_json).collect()))
            .collect::<Vec<_>>(),
    )
    .to_string();
    let body = format!(
        r#"{{
          "flow": {{
            "op": {{"name": "sum", "kind": "reduce", "key": [0],
                   "udf": {{"fn": "fold", "op": "sum", "field": 1}}}},
            "inputs": [
              {{"op": {{"name": "pos", "kind": "map",
                      "udf": {{"fn": "filter", "field": 1, "cmp": "ge", "value": 0}}}},
               "inputs": [{{"source": {{"name": "s", "fields": ["k", "v"], "est_rows": 200}}}}]}}
            ]
          }},
          "inputs": {{"s": {inline_rows}}},
          "options": {{"dop": 2, "batch": 64, "combine": true}}
        }}"#
    );

    let flow = FlowSpec::new(NodeSpec::op(
        OpSpec::reduce("sum", &[0], ReduceUdf::fold_inplace(FoldOp::Sum, 1)),
        vec![NodeSpec::op(
            OpSpec::map("pos", MapUdf::filter_cmp(1, CmpOp::Ge, 0i64)),
            vec![NodeSpec::source(SourceSpec::new("s", &["k", "v"], 200))],
        )],
    ));
    let plan = flow.build().expect("valid spec");
    let best = Optimizer::new(PropertyMode::Sca).with_dop(2).best(&plan);
    let mut inputs = Inputs::new();
    inputs.insert("s".to_string(), data);
    let opts = ExecOptions {
        batch_size: 64,
        combine: true,
        ..ExecOptions::default()
    };
    let (direct_out, direct_stats) =
        execute_with(&best.plan, &best.phys, &inputs, 2, &opts).expect("direct execution");

    // Round trip over the wire.
    let response = client::post_json(handle.addr(), "/v1/query", &body).expect("query");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        response.header("transfer-encoding"),
        Some("chunked"),
        "results must stream back chunked"
    );
    let doc = Json::parse(&response.text()).expect("response is JSON");

    // Byte-identical rows.
    let served_rows = doc.get("rows").expect("rows member");
    assert_eq!(served_rows.to_string(), rows_json(&direct_out));
    // And bag-equal as data sets (same check, independent of ordering).
    let served_ds: DataSet = served_rows
        .as_array()
        .unwrap()
        .iter()
        .map(|row| {
            Record::from_values(
                row.as_array()
                    .unwrap()
                    .iter()
                    .map(|v| strato::server::decode::json_to_value(v).unwrap()),
            )
        })
        .collect();
    assert_eq!(served_ds, direct_out);

    // The response stats agree with the in-process run.
    let stats = doc.get("stats").expect("stats member");
    let totals = direct_stats.totals();
    assert_eq!(
        stats.get("udf_calls").unwrap().as_i64(),
        Some(totals.udf_calls as i64)
    );
    assert_eq!(
        stats.get("records_emitted").unwrap().as_i64(),
        Some(totals.records_emitted as i64)
    );

    // The scrape agrees too, down to per-operator counters.
    let scrape = client::get(handle.addr(), "/metrics")
        .expect("scrape")
        .text();
    assert_eq!(metric(&scrape, "strato_queries_completed_total"), Some(1));
    assert_eq!(metric(&scrape, "strato_queries_errored_total"), Some(0));
    assert_eq!(
        metric(&scrape, "strato_exec_udf_calls_total"),
        Some(totals.udf_calls)
    );
    assert_eq!(
        metric(&scrape, "strato_exec_records_shipped_total"),
        Some(totals.records_shipped)
    );
    let direct_ops = direct_stats.op_snapshots();
    for (i, op) in best.plan.ctx.ops.iter().enumerate() {
        let series = format!("strato_op_udf_calls_total{{op=\"{}\"}}", op.name);
        assert_eq!(
            metric(&scrape, &series),
            Some(direct_ops[i].calls),
            "{series}"
        );
    }

    // The scrape exposes the shared runtime's pool and memory gauges.
    assert!(
        metric(&scrape, "strato_pool_workers").unwrap() > 0,
        "{scrape}"
    );
    assert!(
        metric(&scrape, "strato_pool_tasks_total").unwrap() > 0,
        "the query ran on the shared pool: {scrape}"
    );
    assert_eq!(metric(&scrape, "strato_pool_active_queries"), Some(0));
    assert_eq!(metric(&scrape, "strato_mem_granted_bytes"), Some(0));

    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_queries() {
    let slow_body = r#"{
      "flow": {
        "op": {"name": "extract", "kind": "map",
               "udf": {"fn": "burn", "field": 0, "units": 500000}},
        "inputs": [{"source": {"name": "s", "fields": ["x"], "est_rows": 8}}]
      },
      "inputs": {"s": [[0],[1],[2],[3],[4],[5],[6],[7]]}
    }"#;
    let wait_in_flight = |handle: &strato::server::ServerHandle| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while handle.state().gate.load().0 == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "slow query never became in-flight"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    };

    // Zero grace: the drain reports failure while the query holds its
    // permit — but the handler thread still finishes detached, so the
    // client gets its full response anyway.
    let handle = boot(1, 0);
    let addr = handle.addr();
    let slow = std::thread::spawn(move || client::post_json(addr, "/v1/query", slow_body));
    wait_in_flight(&handle);
    assert!(
        !handle.shutdown_within(std::time::Duration::ZERO),
        "zero grace cannot drain a busy gate"
    );
    let response = slow.join().expect("join").expect("slow query");
    assert_eq!(response.status, 200, "{}", response.text());

    // Generous grace: shutdown blocks until the in-flight query finished
    // streaming its response (the permit is held until the flush).
    let handle = boot(1, 0);
    let addr = handle.addr();
    let slow = std::thread::spawn(move || client::post_json(addr, "/v1/query", slow_body));
    wait_in_flight(&handle);
    assert!(
        handle.shutdown_within(std::time::Duration::from_secs(30)),
        "drain must complete once the query finishes"
    );
    let response = slow.join().expect("join").expect("slow query");
    assert_eq!(response.status, 200, "{}", response.text());
}

#[test]
fn admission_gate_sheds_load_with_429() {
    // One execution token, no queue: a second concurrent query must be
    // rejected immediately.
    let handle = boot(1, 0);
    let addr = handle.addr();

    // A deliberately slow query: burn CPU per record so it stays in
    // flight while the second request arrives.
    let slow_body = r#"{
      "flow": {
        "op": {"name": "extract", "kind": "map",
               "udf": {"fn": "burn", "field": 0, "units": 500000}},
        "inputs": [{"source": {"name": "s", "fields": ["x"], "est_rows": 8}}]
      },
      "inputs": {"s": [[0],[1],[2],[3],[4],[5],[6],[7]]}
    }"#;
    let slow = std::thread::spawn(move || client::post_json(addr, "/v1/query", slow_body));

    // Wait until the slow query holds the execution token.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let scrape = client::get(addr, "/metrics").expect("scrape").text();
        if metric(&scrape, "strato_queries_in_flight") == Some(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow query never became in-flight:\n{scrape}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Saturated: the next query is shed at the door.
    let tiny_body = r#"{
      "flow": {"source": {"name": "s", "fields": ["x"], "est_rows": 1}},
      "inputs": {"s": [[1]]}
    }"#;
    let rejected = client::post_json(addr, "/v1/query", tiny_body).expect("request");
    assert_eq!(rejected.status, 429, "{}", rejected.text());
    assert!(rejected.text().contains("error"));
    // With an empty queue the suggested backoff is the minimal 1 second.
    assert_eq!(
        rejected.header("retry-after"),
        Some("1"),
        "429 must carry a queue-depth-derived Retry-After"
    );

    // The slow query still completes fine.
    let slow_response = slow.join().expect("join").expect("slow query");
    assert_eq!(slow_response.status, 200, "{}", slow_response.text());

    // And once the token is free again, queries are admitted.
    let retry = client::post_json(addr, "/v1/query", tiny_body).expect("retry");
    assert_eq!(retry.status, 200, "{}", retry.text());

    let scrape = client::get(addr, "/metrics").expect("scrape").text();
    assert_eq!(metric(&scrape, "strato_queries_rejected_total"), Some(1));
    assert_eq!(metric(&scrape, "strato_queries_completed_total"), Some(2));

    handle.shutdown();
}

#[test]
fn protocol_errors_map_to_4xx() {
    let handle = boot(2, 2);
    let addr = handle.addr();

    // Malformed JSON → 400.
    let r = client::post_json(addr, "/v1/query", "{nope").expect("request");
    assert_eq!(r.status, 400);
    // Well-formed JSON, wrong shape → 422.
    let r = client::post_json(addr, "/v1/query", r#"{"flows": 1}"#).expect("request");
    assert_eq!(r.status, 422);
    // Structurally invalid flow (key out of range) → 422.
    let r = client::post_json(
        addr,
        "/v1/query",
        r#"{"flow": {"op": {"name": "g", "kind": "reduce", "key": [9],
                           "udf": {"fn": "count"}},
                    "inputs": [{"source": {"name": "s", "fields": ["x"], "est_rows": 1}}]}}"#,
    )
    .expect("request");
    assert_eq!(r.status, 422, "{}", r.text());
    // Unknown endpoint → 404; wrong method → 405.
    assert_eq!(client::get(addr, "/nope").expect("request").status, 404);
    assert_eq!(client::get(addr, "/v1/query").expect("request").status, 405);
    // Liveness probe.
    let health = client::get(addr, "/healthz").expect("request");
    assert_eq!((health.status, health.text().as_str()), (200, "ok"));

    // Every failure was counted, nothing completed.
    let scrape = client::get(addr, "/metrics").expect("scrape").text();
    assert_eq!(metric(&scrape, "strato_queries_errored_total"), Some(3));
    assert_eq!(metric(&scrape, "strato_queries_completed_total"), Some(0));

    handle.shutdown();
}

#[test]
fn traced_query_returns_trace_explain_and_history() {
    let handle = boot(2, 2);
    let addr = handle.addr();
    let body = r#"{
      "flow": {"op": {"name": "sum", "kind": "reduce", "key": [0],
                      "udf": {"fn": "fold", "op": "sum", "field": 1}},
               "inputs": [{"source": {"name": "s", "fields": ["k", "v"], "est_rows": 4}}]},
      "inputs": {"s": [[1, 10], [1, 5], [2, 7], [2, 1]]},
      "options": {"dop": 2, "trace": true}
    }"#;
    let r = client::post_json(addr, "/v1/query", body).expect("query");
    assert_eq!(r.status, 200, "{}", r.text());
    let doc = Json::parse(&r.text()).expect("response is JSON");
    assert_eq!(doc.get("rows").unwrap().to_string(), "[[1,15],[2,8]]");
    let qid = doc
        .get("query_id")
        .and_then(Json::as_i64)
        .expect("query_id member");
    assert!(qid >= 1);

    // The inline trace is a Chrome trace-event document whose complete
    // events all carry this query's id, and it includes the server-side
    // phases around the engine's task spans.
    let trace = doc.get("trace").expect("trace member");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            assert_eq!(
                e.get("pid").and_then(Json::as_i64),
                Some(qid),
                "pid = query id"
            );
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("query_id"))
                    .and_then(Json::as_i64),
                Some(qid)
            );
            e.get("name").and_then(Json::as_str).expect("event name")
        })
        .collect();
    for expected in ["admission-wait", "plan-compile", "optimize"] {
        assert!(names.contains(&expected), "missing {expected:?}: {names:?}");
    }
    assert!(
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .any(|e| {
                e.get("args").and_then(|a| a.get("stage")).is_some()
                    && e.get("args").and_then(|a| a.get("partition")).is_some()
            }),
        "engine task spans with stage/partition attribution: {names:?}"
    );

    // The explain report pairs estimates with actuals.
    let explain = doc
        .get("explain")
        .and_then(Json::as_str)
        .expect("explain member");
    assert!(explain.starts_with("EXPLAIN ANALYZE"), "{explain}");
    assert!(explain.contains("est: rows="), "{explain}");
    assert!(explain.contains("| act: rows="), "{explain}");

    // The trace stays fetchable from the debug endpoint…
    let fetched = client::get(addr, &format!("/v1/queries/{qid}/trace")).expect("fetch");
    assert_eq!(fetched.status, 200, "{}", fetched.text());
    assert_eq!(
        &Json::parse(&fetched.text()).expect("fetched trace is JSON"),
        trace,
        "debug endpoint serves the same document the response carried"
    );
    // …unknown ids 404, wrong methods 405.
    let missing = client::get(addr, "/v1/queries/999999/trace").expect("fetch");
    assert_eq!(missing.status, 404);
    let wrong = client::post_json(addr, &format!("/v1/queries/{qid}/trace"), "{}").expect("post");
    assert_eq!(wrong.status, 405);

    // An untraced query gets an id but no trace/explain members.
    let untraced = body.replace("\"trace\": true", "\"trace\": false");
    let r2 = client::post_json(addr, "/v1/query", &untraced).expect("query");
    assert_eq!(r2.status, 200, "{}", r2.text());
    let doc2 = Json::parse(&r2.text()).expect("response is JSON");
    assert!(doc2.get("query_id").is_some());
    assert!(doc2.get("trace").is_none(), "untraced responses stay lean");
    assert!(doc2.get("explain").is_none());

    handle.shutdown();
}

/// A tiny Prometheus text-format (0.0.4) validator: every sample must
/// belong to a family announced by `# HELP` and `# TYPE`, label blocks
/// must be well-formed `k="v"` lists with escaped values, histogram
/// buckets must be cumulative with `le="+Inf"` equal to `_count`, and
/// every value must parse.
fn assert_valid_prometheus(scrape: &str) {
    use std::collections::{HashMap, HashSet};
    let mut helps: HashSet<&str> = HashSet::new();
    let mut types: HashMap<&str, &str> = HashMap::new();
    for line in scrape.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helps.insert(rest.split_whitespace().next().expect("HELP name"));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let kind = it.next().expect("TYPE kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE kind: {line}"
            );
            assert!(
                types.insert(name, kind).is_none(),
                "family {name} TYPE'd twice"
            );
        }
    }
    // Per histogram family: bucket cumulative counts in order, sum, count.
    type HistoFacts = (Vec<u64>, Option<f64>, Option<u64>);
    let mut histos: HashMap<String, HistoFacts> = HashMap::new();
    let mut saw_inf: HashSet<String> = HashSet::new();
    for line in scrape.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .unwrap_or_else(|| panic!("malformed sample: {line}"));
        let name = &line[..name_end];
        let value_str = line.rsplit(' ').next().unwrap();
        let value = value_str
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric value: {line}"));

        // Validate the label block, if any.
        let mut le_label: Option<String> = None;
        if line.as_bytes()[name_end] == b'{' {
            let close = line
                .rfind('}')
                .unwrap_or_else(|| panic!("unclosed labels: {line}"));
            let mut rest = &line[name_end + 1..close];
            while !rest.is_empty() {
                let eq = rest
                    .find("=\"")
                    .unwrap_or_else(|| panic!("bad label: {line}"));
                let key = &rest[..eq];
                assert!(
                    !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label name {key:?}: {line}"
                );
                // Scan the value for the closing unescaped quote.
                let mut val = String::new();
                let mut chars = rest[eq + 2..].char_indices();
                let mut end = None;
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => {
                            let (_, esc) = chars.next().expect("dangling escape");
                            assert!(
                                ['\\', '"', 'n'].contains(&esc),
                                "unknown escape \\{esc} in {line}"
                            );
                            val.push(esc);
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        _ => val.push(c),
                    }
                }
                let end = end.unwrap_or_else(|| panic!("unterminated label value: {line}"));
                assert!(
                    !val.contains('\n'),
                    "raw newline must be escaped in label values: {line}"
                );
                if key == "le" {
                    le_label = Some(val);
                }
                rest = &rest[eq + 2 + end + 1..];
                rest = rest.strip_prefix(',').unwrap_or(rest);
            }
        }

        // Resolve the family: histogram children map to their base name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| types.get(base) == Some(&"histogram"))
            })
            .unwrap_or(name);
        assert!(types.contains_key(family), "sample without TYPE: {line}");
        assert!(helps.contains(family), "sample without HELP: {line}");

        if types.get(family) == Some(&"histogram") {
            let entry = histos.entry(family.to_string()).or_default();
            if name.ends_with("_bucket") {
                let le = le_label.unwrap_or_else(|| panic!("bucket without le: {line}"));
                if le == "+Inf" {
                    saw_inf.insert(family.to_string());
                } else {
                    le.parse::<f64>()
                        .unwrap_or_else(|_| panic!("bad le bound: {line}"));
                }
                entry.0.push(value as u64);
            } else if name.ends_with("_sum") {
                entry.1 = Some(value);
            } else if name.ends_with("_count") {
                entry.2 = Some(value as u64);
            }
        }
    }
    assert!(!histos.is_empty(), "scrape must expose histograms");
    for (family, (buckets, sum, count)) in histos {
        let count = count.unwrap_or_else(|| panic!("{family}: missing _count"));
        assert!(sum.is_some(), "{family}: missing _sum");
        assert!(
            saw_inf.contains(&family),
            "{family}: missing le=\"+Inf\" bucket"
        );
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{family}: buckets must be cumulative: {buckets:?}"
        );
        assert_eq!(
            buckets.last().copied(),
            Some(count),
            "{family}: le=\"+Inf\" must equal _count"
        );
    }
}

#[test]
fn metrics_scrape_is_valid_prometheus() {
    let handle = boot(2, 2);
    let addr = handle.addr();
    // Complete one query so histograms, per-op and per-query series are
    // all live in the scrape.
    let body = r#"{
      "flow": {"op": {"name": "sum", "kind": "reduce", "key": [0],
                      "udf": {"fn": "fold", "op": "sum", "field": 1}},
               "inputs": [{"source": {"name": "s", "fields": ["k", "v"], "est_rows": 3}}]},
      "inputs": {"s": [[1, 10], [1, 5], [2, 7]]}
    }"#;
    let r = client::post_json(addr, "/v1/query", body).expect("query");
    assert_eq!(r.status, 200, "{}", r.text());

    let scrape = client::get(addr, "/metrics").expect("scrape").text();
    assert_valid_prometheus(&scrape);

    // The latency histograms observed the query…
    assert_eq!(
        metric(&scrape, "strato_query_latency_seconds_count"),
        Some(1)
    );
    assert_eq!(
        metric(&scrape, "strato_admission_wait_seconds_count"),
        Some(1)
    );
    assert_eq!(metric(&scrape, "strato_grant_wait_seconds_count"), Some(1));
    // …build metadata and uptime are exported…
    assert!(
        scrape.contains(&format!(
            "strato_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        )),
        "{scrape}"
    );
    assert!(
        metric(&scrape, "strato_uptime_seconds").is_some(),
        "{scrape}"
    );
    // …and the completed query's per-query gauge settled to 0 instead of
    // leaking or vanishing.
    assert!(
        scrape
            .lines()
            .any(|l| l.starts_with("strato_query_queued_tasks{query=\"q") && l.ends_with(" 0")),
        "recently completed query renders at 0: {scrape}"
    );

    handle.shutdown();
}
