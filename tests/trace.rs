//! End-to-end tests of the query tracing subsystem: a traced execution
//! of a plan with a known spill must produce a valid Chrome trace-event
//! document, correctly nested spans with full task attribution, and an
//! estimate-vs-actual EXPLAIN ANALYZE report — without perturbing
//! results.

use strato::core::cost::CostWeights;
use strato::core::physical::best_physical;
use strato::core::{PhysPlan, PropTable};
use strato::dataflow::{CostHints, Plan, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute_with, explain_analyze, ExecOptions, Inputs, Span, TraceRecorder};
use strato::record::{DataSet, Record, Value};
use strato::server::json::Json;
use strato::workloads::udfs;

/// A grouped aggregation over `rows` (k, v) records — the workload every
/// check below runs. With a tiny memory budget the grouping operator
/// must spill sorted runs and finish through a k-way merge.
fn grouped_sum(rows: i64) -> (Plan, PhysPlan, Inputs) {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], rows as u64));
    // The non-in-place sum is not combinable: the grouping operator must
    // buffer whole groups, which is what makes the tiny budget spill.
    let g = p.reduce(
        "agg",
        &[0],
        udfs::sum_group(2, 1),
        CostHints::default().with_distinct_keys(50),
        s,
    );
    let plan = p.finish(g).unwrap().bind().unwrap();
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
    let ds: DataSet = (0..rows)
        .map(|i| Record::from_values([Value::Int(i % 50), Value::Int((i * 13) % 101 - 50)]))
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);
    (plan, phys, inputs)
}

/// Options that force the grouping operator out of core: a budget far
/// below the working set, combining off so every input record reaches
/// the blocking operator.
fn spilling_opts() -> ExecOptions {
    ExecOptions {
        batch_size: 32,
        combine: false,
        mem_budget: Some(8 * 1024),
        ..ExecOptions::default()
    }
}

#[test]
fn traced_spilling_query_produces_valid_chrome_trace() {
    let (plan, phys, inputs) = grouped_sum(2_000);

    // Reference: the identical run without a recorder.
    let (untraced_out, _) =
        execute_with(&plan, &phys, &inputs, 2, &spilling_opts()).expect("untraced run");

    let recorder = TraceRecorder::new(42);
    let opts = ExecOptions {
        trace: Some(recorder.clone()),
        ..spilling_opts()
    };
    let (out, stats) = execute_with(&plan, &phys, &inputs, 2, &opts).expect("traced run");
    assert_eq!(
        out.sorted(),
        untraced_out.sorted(),
        "tracing must not perturb results"
    );
    assert!(
        stats.totals().spill_runs > 0,
        "this plan must actually spill for the spill spans to mean anything"
    );
    assert_eq!(recorder.dropped(), 0, "ring capacity suffices here");

    // --- The raw spans: attribution and nesting. ---
    let spans = recorder.spans();
    let tasks: Vec<&(usize, Span)> = spans.iter().filter(|(_, s)| s.cat == "task").collect();
    assert!(!tasks.is_empty(), "task steps must be recorded");
    for (_, s) in &tasks {
        let arg = |k: &str| {
            s.args
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("task span {:?} missing arg {k}", s.name))
        };
        assert!(arg("stage") < 8, "plausible stage id");
        assert!(arg("partition") < 2, "dop=2 → partitions 0 and 1");
    }
    // Both partitions of the spilling stage actually ran.
    let partitions: std::collections::BTreeSet<u64> = tasks
        .iter()
        .flat_map(|(_, s)| s.args.iter().filter(|(n, _)| *n == "partition"))
        .map(|(_, v)| *v)
        .collect();
    assert_eq!(partitions.into_iter().collect::<Vec<_>>(), vec![0, 1]);

    for cat in ["ship", "spill", "merge"] {
        assert!(
            spans.iter().any(|(_, s)| s.cat == cat),
            "a spilling dop-2 plan must record at least one {cat:?} span"
        );
    }

    // Task spans on one lane (= one worker thread) never overlap, and
    // every synchronous ship/spill span lies inside some task span on
    // its own lane. (`kway-merge` spans measure a drain window that may
    // straddle cooperative yields, so they are exempt from nesting.)
    let lanes: std::collections::BTreeSet<usize> = spans.iter().map(|(l, _)| *l).collect();
    for lane in lanes {
        let mut lane_tasks: Vec<&Span> = spans
            .iter()
            .filter(|(l, s)| *l == lane && s.cat == "task")
            .map(|(_, s)| s)
            .collect();
        lane_tasks.sort_by_key(|s| s.start_ns);
        for w in lane_tasks.windows(2) {
            assert!(
                w[0].start_ns + w[0].dur_ns <= w[1].start_ns,
                "task steps on one worker are sequential: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for (_, s) in spans
            .iter()
            .filter(|(l, s)| *l == lane && matches!(s.cat, "ship" | "spill"))
        {
            assert!(
                lane_tasks.iter().any(|t| {
                    t.start_ns <= s.start_ns && s.start_ns + s.dur_ns <= t.start_ns + t.dur_ns
                }),
                "span {:?} must nest inside a task step on its lane",
                s.name
            );
        }
    }

    // --- The rendered document is valid Chrome trace-event JSON. ---
    let chrome = recorder.chrome_trace_json();
    let doc = Json::parse(&chrome).expect("chrome trace parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(
        complete.len(),
        spans.len(),
        "every recorded span renders as one complete event"
    );
    for e in &complete {
        assert_eq!(e.get("pid").and_then(Json::as_i64), Some(42));
        assert!(e.get("tid").and_then(Json::as_i64).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("query_id"))
                .and_then(Json::as_i64),
            Some(42),
            "every event carries the query id"
        );
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
        "worker lanes are named via metadata events"
    );
}

#[test]
fn explain_analyze_reports_estimates_against_actuals() {
    let (plan, phys, inputs) = grouped_sum(2_000);
    let (_, stats) = execute_with(&plan, &phys, &inputs, 2, &spilling_opts()).expect("run");
    assert!(stats.totals().spill_runs > 0, "plan must spill");

    let report = explain_analyze(&plan, &phys, &stats);
    assert!(report.starts_with("EXPLAIN ANALYZE"), "{report}");
    // Every operator line pairs an estimate with measurements and a
    // cardinality-error factor; the scan line carries its estimate.
    assert!(report.contains("agg"), "{report}");
    assert!(report.contains("scan s"), "{report}");
    assert!(report.contains("est: rows="), "{report}");
    assert!(report.contains("| act: rows="), "{report}");
    assert!(report.contains("Δrows="), "{report}");
    // The known spill is attributed in the report.
    assert!(report.contains("spilled="), "{report}");
    let spill_line = report
        .lines()
        .find(|l| l.contains("act:") && !l.contains("spilled=0B (0 runs)"))
        .unwrap_or_else(|| panic!("some operator line must show the spill:\n{report}"));
    assert!(spill_line.contains("runs)"), "{spill_line}");
    // The estimator knew the distinct-key count, so the aggregate's
    // cardinality error is an honest finite factor.
    assert!(!report.contains("Δrows=inf"), "{report}");
}
