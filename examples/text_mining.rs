//! Text-mining pipeline optimization (Figure 6 of the paper).
//!
//! A chain of Map operators wrapping "NLP components" (simulated by a
//! deterministic CPU-burning intrinsic): tokenizer, POS tagger, four entity
//! extractors with wildly different costs and selectivities, and a relation
//! extractor. Dependencies discovered by SCA pin the pipeline's skeleton;
//! the 4! = 24 extractor orders differ by an order of magnitude in runtime,
//! and the optimizer picks cheap, selective extractors first.
//!
//! Run with: `cargo run --release --example text_mining`

use std::time::Instant;
use strato::core::Optimizer;
use strato::dataflow::PropertyMode;
use strato::exec::{execute, Inputs};
use strato::workloads::textmining;

fn main() {
    let scale = textmining::TextScale::small();
    let plan = textmining::plan(scale);
    let inputs: Inputs = textmining::generate(scale, 42).into_iter().collect();

    println!(
        "== text-mining pipeline, as implemented ==\n{}",
        plan.render()
    );
    println!("components (cpu units / selectivity):");
    for c in textmining::EXTRACTORS {
        println!("  {:<14} {:>6} / {:.2}", c.name, c.cpu, c.selectivity);
    }

    let opt = Optimizer::new(PropertyMode::Sca).with_dop(4);
    let report = opt.optimize(&plan);
    println!(
        "\n{} valid orders enumerated (paper: 24) in {:?}",
        report.n_enumerated, report.enumeration
    );

    let best = report.best();
    let worst = report.ranked.last().unwrap();
    println!("== optimizer's choice ==\n{}", best.plan.render());

    let t = Instant::now();
    let (out_best, _) = execute(&best.plan, &best.phys, &inputs, 4).unwrap();
    let dt_best = t.elapsed();
    let t = Instant::now();
    let (out_worst, _) = execute(&worst.plan, &worst.phys, &inputs, 4).unwrap();
    let dt_worst = t.elapsed();
    assert_eq!(out_best, out_worst);
    println!(
        "best order:  {dt_best:?}\nworst order: {dt_worst:?} \
         ({:.1}× slower; the paper reports ~10×)",
        dt_worst.as_secs_f64() / dt_best.as_secs_f64()
    );
    println!(
        "{} documents mention a gene–drug relation (of {})",
        out_best.len(),
        scale.docs
    );
}
