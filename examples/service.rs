//! The engine as a service: boot `strato-server` in-process on an
//! ephemeral port, submit a dataflow over HTTP, and scrape `/metrics`.
//!
//! The same wire protocol works against a standalone server started with
//! `cargo run --release --bin strato-serve` — see "Running as a service"
//! in the README.
//!
//! Run with: `cargo run --example service`

use strato::server::json::Json;
use strato::server::{client, Server, ServerConfig};

fn main() {
    // 1. Boot. Port 0 binds ephemerally; `spawn` serves on a background
    //    thread and hands back the address.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_concurrent: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    };
    let handle = Server::bind(&config).expect("bind").spawn().expect("spawn");
    println!("serving on http://{}", handle.addr());

    // 2. Submit a dataflow: filter non-negative amounts, then a per-key
    //    in-place sum (decomposable, so the combiner path is eligible).
    //    Inputs ride along inline; options map onto ExecOptions.
    let body = r#"{
      "flow": {
        "op": {"name": "sum_per_user", "kind": "reduce", "key": [0],
               "udf": {"fn": "fold", "op": "sum", "field": 1}},
        "inputs": [
          {"op": {"name": "valid", "kind": "map",
                  "udf": {"fn": "filter", "field": 1, "cmp": "ge", "value": 0}},
           "inputs": [
             {"source": {"name": "purchases", "fields": ["user", "amount"], "est_rows": 6}}
           ]}
        ]
      },
      "inputs": {"purchases": [[1, 30], [2, 5], [1, 12], [3, -99], [2, 8], [3, 41]]},
      "options": {"dop": 2, "batch": 256, "combine": true}
    }"#;
    let response = client::post_json(handle.addr(), "/v1/query", body).expect("query");
    assert_eq!(response.status, 200, "{}", response.text());

    let doc = Json::parse(&response.text()).expect("response JSON");
    println!("\nrows (canonical order):");
    for row in doc.get("rows").unwrap().as_array().unwrap() {
        println!("  {row}");
    }
    let stats = doc.get("stats").unwrap();
    println!(
        "\nstats: udf_calls={} shipped={} preagg_in={}",
        stats.get("udf_calls").unwrap(),
        stats.get("records_shipped").unwrap(),
        stats.get("records_preagg_in").unwrap()
    );

    // 3. Scrape the Prometheus endpoint.
    let scrape = client::get(handle.addr(), "/metrics")
        .expect("scrape")
        .text();
    println!("\nselected /metrics samples:");
    for line in scrape.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("strato_queries_") || l.starts_with("strato_op_udf_calls"))
    }) {
        println!("  {line}");
    }

    handle.shutdown();
}
