//! Quickstart: the paper's Section 3 worked example.
//!
//! Three Map operators over records ⟨A, B⟩:
//!   f1 replaces B with |B|,
//!   f2 filters records with A < 0,
//!   f3 replaces A with A + B.
//!
//! The optimizer knows nothing about these functions — it statically
//! analyzes their three-address code, derives read/write sets, finds that
//! f1 and f2 can be reordered (and that f3 conflicts), and picks the
//! cheaper order.
//!
//! Run with: `cargo run --example quickstart`

use strato::core::{enumerate_all, Optimizer, PropTable};
use strato::dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
use strato::exec::{execute_logical, Inputs};
use strato::ir::{BinOp, FuncBuilder, Function, UdfKind, UnOp};
use strato::record::{DataSet, Record, Value};
use strato::sca::analyze;

/// f1: B := |B| (conditionally modifies field 1).
fn f1() -> Function {
    let mut b = FuncBuilder::new("f1", UdfKind::Map, vec![2]);
    let bv = b.get_input(0, 1);
    let or = b.copy_input(0);
    let zero = b.konst(0i64);
    let nonneg = b.bin(BinOp::Ge, bv, zero);
    let done = b.new_label();
    b.branch(nonneg, done);
    let abs = b.un(UnOp::Abs, bv);
    b.set(or, 1, abs);
    b.place(done);
    b.emit(or);
    b.ret();
    b.finish().unwrap()
}

/// f2: emit only records with A ≥ 0 (reads field 0, writes nothing).
fn f2() -> Function {
    let mut b = FuncBuilder::new("f2", UdfKind::Map, vec![2]);
    let a = b.get_input(0, 0);
    let zero = b.konst(0i64);
    let neg = b.bin(BinOp::Lt, a, zero);
    let end = b.new_label();
    b.branch(neg, end);
    let or = b.copy_input(0);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().unwrap()
}

/// f3: A := A + B (reads both fields, writes field 0).
fn f3() -> Function {
    let mut b = FuncBuilder::new("f3", UdfKind::Map, vec![2]);
    let a = b.get_input(0, 0);
    let bb = b.get_input(0, 1);
    let sum = b.bin(BinOp::Add, a, bb);
    let or = b.copy_input(0);
    b.set(or, 0, sum);
    b.emit(or);
    b.ret();
    b.finish().unwrap()
}

fn main() {
    // ---- 1. The black boxes, as the optimizer sees them. ----
    for f in [f1(), f2(), f3()] {
        println!("=== {} (three-address code) ===\n{}", f.name(), f);
        println!("SCA-derived properties:\n{}\n", analyze(&f));
    }

    // ---- 2. Build the data flow I → f1 → f2 → f3. ----
    let mut p = ProgramBuilder::new();
    let src = p.source(SourceDef::new("I", &["A", "B"], 1000));
    let m1 = p.map("f1", f1(), CostHints::selectivity(1.0).with_cpu(5.0), src);
    let m2 = p.map("f2", f2(), CostHints::selectivity(0.5), m1);
    let m3 = p.map("f3", f3(), CostHints::selectivity(1.0).with_cpu(5.0), m2);
    let plan = p.finish(m3).unwrap().bind().unwrap();
    println!("implemented data flow:\n{}", plan.render());

    // ---- 3. Enumerate all valid reorderings. ----
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let alts = enumerate_all(&plan, &props, 100);
    println!(
        "{} valid orders (f1 ↔ f2 may swap, f3 is pinned):",
        alts.len()
    );
    for a in &alts {
        println!("{}", a.render());
    }

    // ---- 4. Pick the cheapest (filter first saves f1's work). ----
    let best = Optimizer::new(PropertyMode::Sca).best(&plan);
    println!(
        "optimizer's choice (cost {:.1}):\n{}",
        best.cost,
        best.plan.render()
    );

    // ---- 5. Execute both orders on the paper's example records. ----
    let data: DataSet = [(2i64, -3i64), (-2, -3)]
        .into_iter()
        .map(|(a, b)| Record::from_values([Value::Int(a), Value::Int(b)]))
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("I".into(), data);
    let (out_impl, _) = execute_logical(&plan, &inputs).unwrap();
    let (out_best, _) = execute_logical(&best.plan, &inputs).unwrap();
    println!("output of the implemented order: {out_impl}");
    println!("output of the optimized order:   {out_best}");
    assert_eq!(out_impl, out_best, "reordering must not change the result");
    println!("✓ identical results — the reordering is safe");
}
