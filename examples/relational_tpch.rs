//! Relational OLAP: the paper's TPC-H Q7 and Q15 workloads.
//!
//! Demonstrates that the black-box optimizer reproduces classic relational
//! rewrites — bushy join-order enumeration, selection push-down, and the
//! invariant-grouping aggregation rewrite — without ever seeing algebra:
//! every operator is an opaque PACT + three-address-code UDF.
//!
//! Run with: `cargo run --release --example relational_tpch`

use std::time::Instant;
use strato::core::Optimizer;
use strato::dataflow::PropertyMode;
use strato::exec::{execute, Inputs};
use strato::workloads::tpch;

fn main() {
    let scale = tpch::TpchScale::small();
    let inputs: Inputs = tpch::generate(scale, 42).into_iter().collect();

    // ---------------- Q7: six-way circular join ----------------
    let q7 = tpch::q7_plan(scale);
    println!("== TPC-H Q7, as implemented ==\n{}", q7.render());

    let opt = Optimizer::new(PropertyMode::Sca).with_dop(4);
    let report = opt.optimize(&q7);
    println!(
        "enumerated {} alternative data flows in {:?} (paper: 2518 in <1654 ms)",
        report.n_enumerated, report.enumeration
    );
    let best = report.best();
    let impl_rank = report.rank_of(&q7.canonical()).unwrap() + 1;
    println!(
        "implemented flow ranks {} of {}; best plan:\n{}",
        impl_rank,
        report.n_enumerated,
        best.plan.render()
    );

    let t = Instant::now();
    let (out_best, stats_best) = execute(&best.plan, &best.phys, &inputs, 4).unwrap();
    let dt_best = t.elapsed();
    let worst = report.ranked.last().unwrap();
    let t = Instant::now();
    let (out_worst, stats_worst) = execute(&worst.plan, &worst.phys, &inputs, 4).unwrap();
    let dt_worst = t.elapsed();
    assert_eq!(out_best, out_worst, "every enumerated plan is equivalent");
    println!("best plan:  {dt_best:?} ({stats_best})\nworst plan: {dt_worst:?} ({stats_worst})");
    println!(
        "Q7 result ({} rows of ⟨n1, n2, year, Σ volume⟩):\n{out_best}",
        out_best.len()
    );

    // ---------------- Q15: aggregation push-up ----------------
    let q15 = tpch::q15_plan(scale);
    println!("== TPC-H Q15, as implemented ==\n{}", q15.render());
    let report = opt.optimize(&q15);
    println!("{} alternative orders:", report.n_enumerated);
    for (i, r) in report.ranked.iter().enumerate() {
        println!("rank {} (cost {:.3e}):\n{}", i + 1, r.cost, r.plan.render());
    }
    let best = report.best();
    let (out, _) = execute(&best.plan, &best.phys, &inputs, 4).unwrap();
    println!("Q15 produces {} per-supplier revenue rows", out.len());
}
