//! Non-relational optimization: the clickstream workload (Figure 4).
//!
//! The interesting bits reproduced here:
//!
//! * the optimizer pushes a selective equi-join below two *non-relational*
//!   Reduce operators ("we are not aware of a data processing system that
//!   is able to perform similar optimizations" — Section 7.3),
//! * manual annotations beat SCA by exactly one order (Table 1: 4 vs 3)
//!   because "Append User Info" copies profile fields with a dynamic index
//!   loop that static analysis cannot see through.
//!
//! Run with: `cargo run --release --example clickstream`

use std::time::Instant;
use strato::core::{enumerate_all, Optimizer, PropTable};
use strato::dataflow::PropertyMode;
use strato::exec::{execute, Inputs};
use strato::workloads::clickstream;

fn main() {
    let scale = clickstream::ClickScale::small();
    let plan = clickstream::plan(scale);
    let inputs: Inputs = clickstream::generate(scale, 42).into_iter().collect();

    println!(
        "== clickstream task, as implemented (Figure 4a) ==\n{}",
        plan.render()
    );

    // SCA vs manual annotations (Table 1).
    let sca = PropTable::build(&plan, PropertyMode::Sca);
    let manual = PropTable::build(&plan, PropertyMode::Manual);
    let n_sca = enumerate_all(&plan, &sca, 100).len();
    let n_manual = enumerate_all(&plan, &manual, 100).len();
    println!(
        "orders found — SCA: {n_sca}, manual annotations: {n_manual} \
         (paper: 3 vs 4; the dynamic-index loop in append_user_info blinds SCA)"
    );

    // Optimize with the richer annotation set.
    let opt = Optimizer::new(PropertyMode::Manual).with_dop(4);
    let report = opt.optimize(&plan);
    let best = report.best();
    println!("== best plan (Figure 4b) ==\n{}", best.plan.render());
    println!("physical strategies:\n{}", best.phys.render(&best.plan));

    // Execute implemented vs best.
    let impl_rank = report.rank_of(&plan.canonical()).unwrap();
    let implemented = &report.ranked[impl_rank];
    let t = Instant::now();
    let (out_impl, _) = execute(&implemented.plan, &implemented.phys, &inputs, 4).unwrap();
    let dt_impl = t.elapsed();
    let t = Instant::now();
    let (out_best, _) = execute(&best.plan, &best.phys, &inputs, 4).unwrap();
    let dt_best = t.elapsed();
    assert_eq!(out_impl, out_best);
    println!(
        "implemented flow (rank {} of {}): {dt_impl:?}; best flow: {dt_best:?} \
         (speedup {:.2}×; paper reports 1.4×)",
        impl_rank + 1,
        report.n_enumerated,
        dt_impl.as_secs_f64() / dt_best.as_secs_f64()
    );
    println!(
        "{} buy sessions with logged-in users and profile data",
        out_best.len()
    );
}
