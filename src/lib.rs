//! # strato — black-box data flow optimization
//!
//! Facade crate re-exporting the full `strato` stack, a from-scratch Rust
//! reproduction of *"Opening the Black Boxes in Data Flow Optimization"*
//! (Hueske et al., PVLDB 5(11), 2012).
//!
//! The individual subsystems live in dedicated crates:
//!
//! * [`record`] — record data model, global record, attribute sets,
//! * [`ir`] — three-address-code IR for user-defined functions,
//! * [`sca`] — static code analysis deriving read/write sets and emit bounds,
//! * [`dataflow`] — the PACT programming model (Map, Reduce, Cross, Match,
//!   CoGroup) and program construction,
//! * [`core`] — reordering conditions, plan enumeration, cost-based physical
//!   optimization (the paper's contribution),
//! * [`exec`] — a parallel in-process execution engine,
//! * [`server`] — the engine as a resident HTTP/JSON query service,
//! * [`workloads`] — the four evaluation workloads of the paper.
//!
//! See the repository `README.md` for a quickstart, `ARCHITECTURE.md` for
//! how the crates fit together, and `DESIGN.md` for the full system
//! inventory.

#![warn(missing_docs)]

pub use strato_core as core;
pub use strato_dataflow as dataflow;
pub use strato_exec as exec;
pub use strato_ir as ir;
pub use strato_record as record;
pub use strato_sca as sca;
pub use strato_server as server;
pub use strato_workloads as workloads;
