#!/usr/bin/env python3
"""Report-only comparison of a bench run against BENCH_baseline.json.

Usage: bench_compare.py <bench-stdout-file> <baseline-json>

Reads the `BENCH_JSON {...}` lines the vendored criterion shim prints
(one per bench), matches them to baseline entries by (group, bench), and
prints a median-vs-median table. Always exits 0: benchmark numbers on
shared CI runners are too noisy to gate on, so this step reports the
trajectory and leaves judgement to the reviewer.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_out, baseline_path = sys.argv[1], sys.argv[2]

    with open(baseline_path, encoding="utf-8") as f:
        baseline = {
            (e["group"], e["bench"]): e["median_ns"]
            for e in json.load(f)["benches"]
        }

    results = []
    with open(bench_out, encoding="utf-8") as f:
        for line in f:
            if not line.startswith("BENCH_JSON "):
                continue
            e = json.loads(line[len("BENCH_JSON "):])
            results.append((e["group"], e["bench"], e["median_ns"]))

    if not results:
        print("bench_compare: no BENCH_JSON lines found (report only)")
        return 0

    print(f"{'bench':<42} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for group, bench, median in results:
        name = f"{group}/{bench}" if group else bench
        base = baseline.get((group, bench))
        if base is None:
            print(f"{name:<42} {'—':>12} {fmt(median):>12} {'new':>8}")
        else:
            ratio = median / base if base else float("inf")
            flag = "" if 0.8 <= ratio <= 1.25 else "  <-- check"
            print(
                f"{name:<42} {fmt(base):>12} {fmt(median):>12} "
                f"{ratio:>7.2f}x{flag}"
            )
    print("bench_compare: report only — never fails the build")
    return 0


def fmt(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f}µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.3f}s"


if __name__ == "__main__":
    sys.exit(main())
