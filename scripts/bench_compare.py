#!/usr/bin/env python3
"""Compare a bench run against BENCH_baseline.json.

Usage: bench_compare.py <bench-stdout-file> <baseline-json> [--fail-above PCT]

Reads the `BENCH_JSON {...}` lines the vendored criterion shim prints
(one per bench), matches them to baseline entries by (group, bench), and
prints a median-vs-median table.

Without --fail-above the comparison is report-only and always exits 0.
With --fail-above PCT the script exits 1 when any matched bench's median
regressed by more than PCT percent over its baseline (new benches without
a baseline entry never fail). Benchmark numbers on shared CI runners are
noisy, so pick a generous threshold — the CI gate uses 25.

Baseline entries whose *group* appears in the current run but whose bench
does not are reported as `missing` (a deleted or renamed bench must not
slip through silently) and fail the gate under --fail-above. Baseline
groups absent from the run entirely (historical captures, benches of
other binaries) are ignored. A zero baseline median reports `n/a` rather
than an infinite ratio.
"""

import json
import sys


def main() -> int:
    args = sys.argv[1:]
    fail_above = None
    if "--fail-above" in args:
        i = args.index("--fail-above")
        try:
            fail_above = float(args[i + 1])
        except (IndexError, ValueError):
            print("bench_compare: --fail-above needs a numeric percent", file=sys.stderr)
            return 2
        del args[i : i + 2]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_out, baseline_path = args

    with open(baseline_path, encoding="utf-8") as f:
        baseline = {
            (e["group"], e["bench"]): e["median_ns"]
            for e in json.load(f)["benches"]
        }

    results = []
    with open(bench_out, encoding="utf-8") as f:
        for line in f:
            if not line.startswith("BENCH_JSON "):
                continue
            e = json.loads(line[len("BENCH_JSON "):])
            results.append((e["group"], e["bench"], e["median_ns"]))

    if not results:
        print("bench_compare: no BENCH_JSON lines found")
        return 0

    regressions = []
    print(f"{'bench':<42} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for group, bench, median in results:
        name = f"{group}/{bench}" if group else bench
        base = baseline.get((group, bench))
        if base is None:
            print(f"{name:<42} {'—':>12} {fmt(median):>12} {'new':>8}")
            continue
        if base == 0:
            # A zero baseline median is a capture artifact; any ratio
            # against it is meaningless (and inf would always trip the
            # gate). Report and move on.
            print(f"{name:<42} {fmt(base):>12} {fmt(median):>12} {'n/a':>8}")
            continue
        ratio = median / base
        flag = "" if 0.8 <= ratio <= 1.25 else "  <-- check"
        print(
            f"{name:<42} {fmt(base):>12} {fmt(median):>12} "
            f"{ratio:>7.2f}x{flag}"
        )
        if fail_above is not None and ratio > 1.0 + fail_above / 100.0:
            regressions.append((name, ratio))

    # Baseline benches that this run should have produced but did not:
    # only groups the run actually covers are in scope (the baseline also
    # archives other bench binaries and historical captures).
    current = {(g, b) for g, b, _ in results}
    current_groups = {g for g, _, _ in results}
    missing = sorted(
        (g, b)
        for (g, b) in baseline
        if g in current_groups and (g, b) not in current
    )
    for group, bench in missing:
        name = f"{group}/{bench}" if group else bench
        print(f"{name:<42} {fmt(baseline[(group, bench)]):>12} {'—':>12} {'missing':>8}")

    if fail_above is None:
        print("bench_compare: report only — never fails the build")
        return 0
    failed = False
    for name, ratio in regressions:
        failed = True
        print(
            f"bench_compare: FAIL {name} regressed {ratio:.2f}x "
            f"(> +{fail_above:g}% over baseline median)"
        )
    for group, bench in missing:
        failed = True
        name = f"{group}/{bench}" if group else bench
        print(
            f"bench_compare: FAIL {name} is in the baseline but missing "
            "from this run (deleted or renamed bench?)"
        )
    if failed:
        return 1
    print(f"bench_compare: all medians within +{fail_above:g}% of baseline")
    return 0


def fmt(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f}µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.3f}s"


if __name__ == "__main__":
    sys.exit(main())
